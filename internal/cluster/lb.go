package cluster

import (
	"math"
	"sort"
	"strconv"
	"time"

	"cloud9/internal/coverage"
	"cloud9/internal/obs"
)

// BalancerConfig tunes the load balancing algorithm of §3.3 and the
// membership protocol layered on top of it.
type BalancerConfig struct {
	// Delta is the σ multiplier classifying workers as under/overloaded
	// (li < max(l̄ − δσ, 0) resp. li > l̄ + δσ).
	Delta float64
	// MinTransfer suppresses transfers smaller than this many jobs.
	MinTransfer int
	// Lease is how long a member may stay silent (no accepted status)
	// before it is presumed crashed and evicted. 0 means DefaultLease.
	Lease time.Duration
	// Portfolio lists the internal/search strategy specs the LB hands
	// out to workers — one slot per joining member, rebalanced on
	// membership changes, reweighted by observed coverage yield (see
	// portfolio.go). Empty: workers run the engine default, as before.
	// Validate entries with search.ParsePortfolio before starting.
	Portfolio []string
	// ReweightEvery is the number of LB ticks between periodic
	// yield-driven assignment rebalances (0 = DefaultReweightEvery;
	// negative disables the periodic pass — membership changes still
	// rebalance).
	ReweightEvery int
	// Reweight selects how slot allocation weights are derived from the
	// per-slot yield attribution: ReweightBandit (the default) scores
	// slots with a deterministic UCB1 bandit; ReweightProportional keeps
	// PR 3's 1+Σyield largest-remainder scheme.
	Reweight string
	// BanditC is the UCB1 exploration constant (0 = DefaultBanditC).
	BanditC float64
	// Learn enables the online sample-evaluate-refine loop over the
	// dist-opt weight family: the LB perturbs the incumbent weight
	// vector, races challengers in the portfolio's other dist-opt slots,
	// and adopts winners (see learn.go). Requires at least two dist-opt
	// slots in Portfolio.
	Learn bool
	// LearnEvery is the number of reweight passes between learner
	// decisions (0 = DefaultLearnEvery).
	LearnEvery int
	// LearnSeed seeds the learner's deterministic perturbation stream.
	LearnSeed int64
	// DataPlane selects how job payloads move between workers:
	// DataPlaneP2P (the default; "" means p2p) ships batches directly
	// worker→worker over peer sessions, falling back to LB relay when a
	// link cannot be established; DataPlaneRelay forces every batch
	// through the LB (MsgShip); DataPlaneDepth removes payload shipping
	// entirely in favor of deterministic depth-partition unit grants.
	DataPlane string
	// PartitionDepth and PartitionUnits shape the depth data plane:
	// terminal paths are truncated at PartitionDepth and hashed into
	// PartitionUnits work units any worker can re-derive locally
	// (0 = DefaultPartitionDepth / DefaultPartitionUnits). Only
	// meaningful when DataPlane is DataPlaneDepth.
	PartitionDepth int
	PartitionUnits int
}

// Data-plane modes for BalancerConfig.DataPlane.
const (
	// DataPlaneP2P (the default) ships job payloads worker→worker over
	// peer sessions; the LB only names (src, dst, count) and relays
	// custody acknowledgments. Falls back to relay per batch when a peer
	// link is down.
	DataPlaneP2P = "p2p"
	// DataPlaneRelay forces every job batch through the LB (the
	// pre-decentralization behavior, kept as a fallback and baseline).
	DataPlaneRelay = "relay"
	// DataPlaneDepth replaces job shipping with depth-partitioned work
	// units: every worker re-derives the shared upper tree and only the
	// unit owner counts the terminals inside it.
	DataPlaneDepth = "depth"
)

// Default depth-partition shape when BalancerConfig leaves the fields
// zero: paths truncated at depth 4 hash into 16 units — enough units to
// keep a small cluster busy without fragmenting the tree.
const (
	DefaultPartitionDepth = 4
	DefaultPartitionUnits = 16
)

// Reweight modes for BalancerConfig.Reweight.
const (
	// ReweightBandit (the default) draws slot allocation weights from a
	// deterministic UCB1 bandit over per-slot normalized coverage yield.
	ReweightBandit = "bandit"
	// ReweightProportional is the legacy 1+Σyield proportional scheme.
	ReweightProportional = "proportional"
)

// DefaultBanditC is the UCB1 exploration constant when
// BalancerConfig.BanditC is zero. Rewards live in [0,1); ½ keeps the
// exploration bonus comparable to a mid-range mean without letting it
// drown the signal.
const DefaultBanditC = 0.5

// DefaultLearnEvery is the number of reweight passes between learner
// decisions when BalancerConfig.LearnEvery is zero.
const DefaultLearnEvery = 4

// DefaultReweightEvery is the LB-tick cadence of periodic portfolio
// reweighting when BalancerConfig.ReweightEvery is zero.
const DefaultReweightEvery = 32

// DefaultLease is the membership lease used when BalancerConfig.Lease is
// zero. Generous relative to worker status cadence so that a slow batch
// never triggers a false eviction.
const DefaultLease = 2 * time.Second

// DefaultBalancerConfig mirrors the paper's description with a moderate
// δ so that small clusters still balance.
func DefaultBalancerConfig() BalancerConfig {
	return BalancerConfig{Delta: 0.5, MinTransfer: 1, Lease: DefaultLease}
}

// TransferOrder is the LB's instruction ⟨source, destination, #jobs⟩.
type TransferOrder struct {
	Src, Dst, NJobs int
}

// Broadcast as an Outbound.To value addresses every current member.
const Broadcast = -1

// Outbound is a message the load balancer wants delivered; the owning
// transport (in-process fabric, sim, or TCP server) dispatches it.
// Dispatch order must be preserved per destination: acknowledgment
// relays must arrive before a subsequent eviction notice.
type Outbound struct {
	To  int // member id, or Broadcast
	Msg Message
}

// Member is the load balancer's view of one cluster worker.
type Member struct {
	ID    int
	Epoch uint64
	Addr  string // transport hint (TCP peer job-transfer address)
	// Spec is the strategy spec assigned from the portfolio (SpecIdx its
	// slot), "" / -1 when no portfolio is configured. Pinned members
	// chose their strategy locally and are excluded from allocation.
	// Yield counts the global-overlay lines this member was first to
	// cover — the signal portfolio reweighting runs on.
	Spec    string
	SpecIdx int
	Pinned  bool
	Yield   uint64
	// Reported is set once the first status arrives; unreported members
	// neither balance nor count toward quiescence.
	Reported bool
	// Last is the most recent accepted status (used for balancing and
	// quiescence). LastFull is the most recent status that carried the
	// frontier snapshot; it becomes the member's accounting record if the
	// member departs — workers send a full status whenever their transfer
	// counters move AND re-send one after any LB stream interruption (a
	// failed send or a reconnect, see lbStreamTransport), so a lost full
	// snapshot is replaced as soon as the stream resumes and only
	// discardable exploration progress can sit between LastFull and Last.
	Last     Status
	LastFull Status
	// Obs is the member's metrics as of LastFull, reassembled from the
	// obs deltas full statuses carry (cumulative resyncs replace it, see
	// Status.ObsBase). Deliberately parallels LastFull: if the member
	// departs, these are its accounted metrics — same cut as its
	// frontier and counters.
	Obs obs.Snapshot
	// LastSeen is the lease renewal time.
	LastSeen time.Time
	// resynced marks that this member has re-reported a full frontier
	// snapshot inside the current post-promotion resync window (see
	// LoadBalancer.promote); meaningless outside one.
	resynced bool
	// ackRelayed tracks, per source, the highest batch ack already
	// relayed on this member's behalf, so the cumulative acks workers
	// repeat in every status don't turn into repeated MsgJobsAck relays.
	ackRelayed map[int]uint64
}

// Record is the member's accounting record: the last frontier-bearing
// snapshot (everything after it is re-explored by whoever inherits the
// frontier), falling back to the latest status if no full snapshot ever
// arrived.
func (m *Member) Record() Status {
	if m.LastFull.Frontier != nil {
		return m.LastFull
	}
	return m.Last
}

// custodyBatch is a job tree the LB holds in custody after reclaiming it
// from a departed member, until a survivor acknowledges it.
type custodyBatch struct {
	jt *JobTree
	n  int
	// id is the batch's stable custody id: the departed member's epoch.
	// Epochs are globally unique — across the run and across LB
	// incarnations — so a promoted standby re-delivering a batch the lost
	// primary already placed reuses the same id and the receivers'
	// permanent dedup set still applies.
	id uint64
	// rec is the departed member's accounting record (counters and
	// accounted metrics, no frontier), shipped with every delivery and
	// echoed back in ReseatAcks — the repair channel for an LB that
	// missed the departure.
	rec *Status
	// counted is set once the batch's job count has been added to the
	// send side of the quiescence reconciliation (exactly once, however
	// many times the batch is re-delivered).
	counted bool
	dst     int
	sentAt  time.Time
}

// LoadBalancer keeps per-worker status, the membership table, computes
// balancing decisions, and maintains the global coverage overlay. It
// never touches program states — encoding and transfer of work happen
// worker-to-worker, keeping the LB off the critical path (§3.1). The
// exception is crash recovery: the LB re-seats a departed member's
// last-reported frontier (already path-encoded) onto a survivor.
//
// All methods that need wall-clock time take it as a parameter so the
// deterministic simulation can drive the membership machinery with a
// synthetic clock.
type LoadBalancer struct {
	cfg      BalancerConfig
	members  map[int]*Member
	evicted  map[int]uint64 // departed id → epoch, for stale-message rejection
	cov      *coverage.BitVec
	covDirty bool

	nextID    int
	nextEpoch uint64

	// Per-portfolio-slot cumulative coverage yield, and the countdown to
	// the next periodic reweighting pass (see portfolio.go).
	specYield     []uint64
	reweightTicks int
	// bandit scores the slots under ReweightBandit (nil under
	// proportional mode or without a portfolio); windowYield accumulates
	// per-slot new-coverage lines between reweight passes — one bandit
	// pull per slot per window, so a slot's reward is its coverage rate
	// per quantum, not per status (per-status rewards punish multi-worker
	// slots: the second worker's status re-reports lines the first
	// already merged and pays zero). learner runs the sample-evaluate-
	// refine loop when cfg.Learn is set.
	bandit      *slotBandit
	windowYield []uint64
	learner     *specLearner

	// Custody of re-seated jobs: outstanding (delivered, unacked) batches
	// by stable custody id (the departed member's epoch), plus orphans
	// waiting for a survivor to exist. reseatAcked remembers, per custody
	// id, the ReseatAck a survivor echoed — proof the batch was imported,
	// with the departed member's true accounting record attached.
	reseats     map[uint64]*custodyBatch
	orphans     []*custodyBatch
	reseatAcked map[uint64]ReseatAck

	// Quiescence reconciliation state for departed members: their final
	// counters, plus jobs the LB itself delivered while re-seating.
	// goneObs is the Merge-fold of departed members' accounted metrics.
	gone       []Status
	goneObs    obs.Snapshot
	goneSent   uint64
	goneRecv   uint64
	reseatSent uint64

	// journal records fleet membership and custody events; lastNow
	// caches the most recent clock value threaded into an LB entry point,
	// for sites without a time parameter (rebalance/adoption paths).
	journal *obs.Journal
	lastNow time.Time

	// Fleet-view counters surfaced in FleetObs (joins and custody
	// re-seats have no legacy public field; reweights/rebalances count
	// portfolio maintenance passes that moved something).
	joins         int
	reseatsIssued int
	reweights     int
	rebalances    int

	// Control-plane replication (replica.go). term is the primary
	// incarnation (1 at birth, +1 per promotion); repSeq/repLog the
	// input log; repEnabled gates logging; replaying suppresses re-
	// logging while a replica applies entries; onRep streams appended
	// entries to attached standbys. baseCfg is the effective (defaulted)
	// config before the learner's in-place portfolio rewrites — what a
	// standby must be constructed with to replay identically.
	term       uint64
	repSeq     uint64
	repLog     []RepEntry
	repEnabled bool
	replaying  bool
	onRep      func(RepEntry)
	baseCfg    BalancerConfig

	// Post-promotion state: the resync window (evictions and orphan
	// placement suspended until members re-report or the deadline
	// passes) and the epoch range in which unknown members are
	// readmitted (joins the lost primary accepted during the
	// replication gap). promotions/readmits feed the failover metrics.
	resyncPending bool
	resyncUntil   time.Time
	readmitLo     uint64
	readmitHi     uint64
	promotions    int
	readmits      int

	// Data plane. unitOwner maps depth-partition unit → owning member id
	// (-1 unclaimed; nil outside depth mode) and is replicated state:
	// every mutation happens inside logged entry handlers (Tick grants,
	// depart reclaims, Update claim reconciliation), so a replica replays
	// the identical table. unitSentAt paces grant re-delivery per member.
	// relayedBatches/relayedBytes count job payload that transited the LB
	// (MsgShip relays) — primary-local observability, deliberately not
	// replicated: a relay in flight through a lost primary is re-sent by
	// its custodial owner, exactly like a batch lost on a dead peer link.
	unitOwner      []int
	unitSentAt     map[int]time.Time
	unitGrants     int
	unitReclaims   int
	relayedBatches int
	relayedBytes   uint64

	// Replication-log compaction (replica.go): repBase is the seq the
	// retained log suffix starts after (entries ≤ repBase live only in
	// lastSnap); repCompactAt is the retained-entry count that triggers
	// compaction; repSnapshots counts compactions taken.
	repBase      uint64
	repCompactAt int
	repSnapshots int
	lastSnap     *RepSnapshot

	// Enabled gates balancing (Fig. 13 disables it mid-run).
	Enabled bool

	// TransfersIssued counts ⟨src,dst,n⟩ orders. Evictions counts
	// lease-expiry departures; Leaves counts graceful goodbyes.
	TransfersIssued int
	Evictions       int
	Leaves          int
}

// NewLoadBalancer builds an LB for coverage vectors of the given bit
// length.
func NewLoadBalancer(cfg BalancerConfig, covLen int) *LoadBalancer {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.ReweightEvery == 0 {
		cfg.ReweightEvery = DefaultReweightEvery
	}
	if cfg.Reweight == "" {
		cfg.Reweight = ReweightBandit
	}
	if cfg.BanditC == 0 {
		cfg.BanditC = DefaultBanditC
	}
	if cfg.LearnEvery == 0 {
		cfg.LearnEvery = DefaultLearnEvery
	}
	if cfg.DataPlane == DataPlaneDepth {
		if cfg.PartitionDepth <= 0 {
			cfg.PartitionDepth = DefaultPartitionDepth
		}
		if cfg.PartitionUnits <= 0 {
			cfg.PartitionUnits = DefaultPartitionUnits
		}
	}
	lb := &LoadBalancer{
		cfg:         cfg,
		baseCfg:     cfg,
		members:     map[int]*Member{},
		evicted:     map[int]uint64{},
		reseats:     map[uint64]*custodyBatch{},
		reseatAcked: map[uint64]ReseatAck{},
		cov:         coverage.New(covLen),
		specYield:   make([]uint64, len(cfg.Portfolio)),
		journal:     obs.NewJournal(0),
		term:        1,
		Enabled:     true,
	}
	lb.baseCfg.Portfolio = append([]string(nil), cfg.Portfolio...)
	lb.journal.Worker = LBFrom
	lb.repCompactAt = DefaultRepCompactAt
	if cfg.DataPlane == DataPlaneDepth {
		lb.unitOwner = make([]int, cfg.PartitionUnits)
		for i := range lb.unitOwner {
			lb.unitOwner[i] = -1
		}
		lb.unitSentAt = map[int]time.Time{}
	}
	if len(cfg.Portfolio) > 0 && cfg.Reweight == ReweightBandit {
		lb.bandit = newSlotBandit(len(cfg.Portfolio))
		lb.windowYield = make([]uint64, len(cfg.Portfolio))
	}
	if cfg.Learn {
		lb.learner = newSpecLearner(lb)
	}
	return lb
}

// Join admits a new member, assigning it a fresh id and epoch. The
// returned outbounds broadcast the updated membership view.
func (lb *LoadBalancer) Join(addr string, now time.Time) (*Member, []Outbound) {
	lb.logRep(RepEntry{Kind: RepJoin, Addr: addr, T: now.UnixNano()})
	lb.lastNow = now
	specIdx, spec := lb.assignSpec()
	id := lb.nextID
	lb.nextID++
	lb.nextEpoch++
	m := &Member{ID: id, Epoch: lb.nextEpoch, Addr: addr, LastSeen: now,
		Spec: spec, SpecIdx: specIdx}
	lb.members[id] = m
	lb.joins++
	lb.journal.AppendAt(now, obs.EvWorkerJoin, id, map[string]string{
		"epoch": strconv.FormatUint(m.Epoch, 10), "spec": spec,
	})
	return m, []Outbound{{To: Broadcast, Msg: Message{Kind: MsgMembers, Members: lb.memberView()}}}
}

// IsMember reports whether id is a current member with the given epoch.
func (lb *LoadBalancer) IsMember(id int, epoch uint64) bool {
	m := lb.members[id]
	return m != nil && m.Epoch == epoch
}

// NumMembers returns the current membership size.
func (lb *LoadBalancer) NumMembers() int { return len(lb.members) }

// Touch renews a member's lease without a status (TCP reconnects).
func (lb *LoadBalancer) Touch(id int, now time.Time) {
	if m := lb.members[id]; m != nil {
		lb.logRep(RepEntry{Kind: RepTouch, From: id, T: now.UnixNano()})
		m.LastSeen = now
	}
}

// Config returns the balancer's effective configuration — defaults
// resolved, portfolio as originally configured (before any learner
// rewrites). A standby constructed from it replays the primary's input
// log into identical state, learner perturbation stream included.
func (lb *LoadBalancer) Config() BalancerConfig { return lb.baseCfg }

// memberView snapshots the membership table as id → epoch.
func (lb *LoadBalancer) memberView() map[int]uint64 {
	v := make(map[int]uint64, len(lb.members))
	for id, m := range lb.members {
		v[id] = m.Epoch
	}
	return v
}

// Update ingests a worker status (coverage is OR-merged into the global
// vector) and renews the member's lease. Statuses from non-members or
// stale epochs are discarded (ok=false) so a falsely evicted straggler
// cannot corrupt the accounting. The returned outbounds relay the
// status's job-batch acknowledgments to their sources.
func (lb *LoadBalancer) Update(st Status, now time.Time) (outs []Outbound, ok bool) {
	m := lb.members[st.Worker]
	if m == nil && st.Frontier != nil && lb.canReadmit(st.Worker, st.Epoch) {
		// Post-promotion: a worker the lost primary admitted during the
		// replication gap re-reports. Its epoch falls in the stride window
		// no other incarnation can issue, and the full snapshot it opens
		// with establishes its accounting record from scratch.
		rm, routs := lb.Readmit(st.Worker, st.Epoch, "", now)
		m = rm
		outs = append(outs, routs...)
	}
	if m == nil || m.Epoch != st.Epoch {
		return outs, false
	}
	lb.logRep(RepEntry{Kind: RepStatus, Status: &st, T: now.UnixNano()})
	lb.lastNow = now
	// Data-plane journaling: peer-session events are derived from the
	// cumulative counters each status carries, compared against the
	// previous accepted record — so a replica replaying the status log
	// journals the identical sequence, and a re-sent status is a no-op.
	if st.PeerOpens > m.Last.PeerOpens {
		lb.journal.AppendAt(now, obs.EvPeerSessionOpen, st.Worker, map[string]string{
			"total": strconv.FormatUint(st.PeerOpens, 10),
		})
	}
	if st.PeerCloses > m.Last.PeerCloses {
		lb.journal.AppendAt(now, obs.EvPeerSessionClose, st.Worker, map[string]string{
			"total": strconv.FormatUint(st.PeerCloses, 10),
		})
	}
	if st.PeerFallbacks > m.Last.PeerFallbacks {
		lb.journal.AppendAt(now, obs.EvPeerFallback, st.Worker, map[string]string{
			"total": strconv.FormatUint(st.PeerFallbacks, 10),
		})
	}
	// Depth mode: reconcile unit claims. A promoted standby may have
	// missed a grant issued inside the replication gap; for a unit nobody
	// else owns, the claimant's word is authoritative (grants are the
	// only way a worker learns a unit id, and reclaims only happen on
	// departure, which also voids the claim source).
	if lb.unitOwner != nil {
		for _, u := range st.Units {
			if u >= 0 && u < len(lb.unitOwner) && lb.unitOwner[u] == -1 {
				lb.unitOwner[u] = st.Worker
			}
		}
	}
	m.Last = st
	if st.Frontier != nil {
		m.LastFull = st
		if lb.resyncPending {
			m.resynced = true
		}
	}
	if st.Obs != nil {
		// Cumulative resync (the worker could not prove this record still
		// holds its baseline) replaces; an ordinary delta applies. Both
		// keep the invariant Obs ≡ metrics-at-LastFull.
		if st.ObsBase {
			m.Obs = st.Obs.Clone()
		} else {
			m.Obs.Apply(*st.Obs)
		}
	}
	m.Reported = true
	m.LastSeen = now
	var added int
	if len(st.CovWords) > 0 {
		g := coverage.FromWords(st.CovWords, lb.cov.Len()-1)
		if added = lb.cov.Or(g); added > 0 {
			lb.covDirty = true
			// Per-worker yield: lines this member was first to land in
			// the global overlay — portfolio reweighting's signal. The
			// slot credited is the spec the status reports running.
			m.Yield += uint64(added)
		}
	}
	if added > 0 {
		if idx := lb.yieldSlot(st.Spec, m); idx >= 0 && idx < len(lb.specYield) {
			lb.specYield[idx] += uint64(added)
			if lb.windowYield != nil {
				lb.windowYield[idx] += uint64(added)
			}
		}
	}
	// Assignment reconciliation: the member record is the intent, the
	// status the reality. A pinned worker (explicit -strategy) drops out
	// of allocation permanently; an unpinned worker reporting a spec
	// other than its assignment missed a MsgStrategy (lost on a dead
	// conn, or a reconnect raced the rebalance) — re-send it, which is
	// idempotent worker-side and converges within one status round-trip.
	if len(lb.cfg.Portfolio) > 0 {
		switch {
		case st.SpecPinned:
			if !m.Pinned {
				m.Pinned = true
				m.SpecIdx = -1
			}
			m.Spec = st.Spec
		case st.Spec != m.Spec:
			outs = append(outs, Outbound{To: st.Worker, Msg: Message{
				Kind: MsgStrategy, Spec: m.Spec,
			}})
		}
	}
	// Relay peer-batch acks to their sources — only when the mark
	// advanced, since workers repeat their cumulative acks in every
	// status. Clear acknowledged LB custody the same way; both are
	// idempotent high-water marks.
	for _, ack := range st.Acks {
		if m.ackRelayed[ack.Src] >= ack.Seq {
			continue
		}
		if m.ackRelayed == nil {
			m.ackRelayed = map[int]uint64{}
		}
		m.ackRelayed[ack.Src] = ack.Seq
		if lb.members[ack.Src] != nil {
			outs = append(outs, Outbound{To: ack.Src, Msg: Message{
				Kind: MsgJobsAck, From: st.Worker, Seq: ack.Seq,
			}})
		}
	}
	// Custody acks clear outstanding re-seat batches — from any echoer,
	// not just the recorded destination: before a failover only the
	// actual importer echoes a batch's id, and after one the recorded
	// destination may be stale (the lost primary re-homed the batch
	// without this incarnation seeing it). Every ack is remembered with
	// its accounting record so departures processed later can recover
	// the true cut (see depart). Workers sort their acks, keeping the
	// journal deterministic.
	for _, ack := range st.ReseatAcks {
		if _, seen := lb.reseatAcked[ack.ID]; !seen {
			lb.reseatAcked[ack.ID] = ack
		}
		if b := lb.reseats[ack.ID]; b != nil {
			lb.journal.AppendAt(now, obs.EvReseatReplayed, st.Worker, map[string]string{
				"id": strconv.FormatUint(ack.ID, 10), "jobs": strconv.Itoa(b.n),
			})
			delete(lb.reseats, ack.ID)
		}
	}
	return outs, true
}

// Goodbye handles a graceful leave: the member's final status (sent just
// before the goodbye) becomes its accounting record and any remaining
// frontier is re-seated.
func (lb *LoadBalancer) Goodbye(id int, now time.Time) []Outbound {
	if lb.members[id] == nil {
		return nil
	}
	lb.logRep(RepEntry{Kind: RepGoodbye, From: id, T: now.UnixNano()})
	lb.lastNow = now
	lb.Leaves++
	lb.journal.AppendAt(now, obs.EvWorkerGoodbye, id, nil)
	return lb.depart(id, now)
}

// ExpireLeases evicts every member whose lease has lapsed and returns
// the resulting eviction notices and re-seat deliveries.
func (lb *LoadBalancer) ExpireLeases(now time.Time) []Outbound {
	lb.logRep(RepEntry{Kind: RepExpire, T: now.UnixNano()})
	lb.lastNow = now
	if lb.resyncPending && !lb.resyncTick(now) {
		// Evictions are suspended until the post-promotion resync window
		// closes: leases were restarted at promotion, and acting on
		// replicated state before members re-report would re-seat stale
		// cuts whose repairs (ReseatAcks) are still in flight.
		return nil
	}
	var expired []int
	for id, m := range lb.members {
		if now.Sub(m.LastSeen) > lb.cfg.Lease {
			expired = append(expired, id)
		}
	}
	sort.Ints(expired)
	var outs []Outbound
	for _, id := range expired {
		lb.Evictions++
		lb.journal.AppendAt(now, obs.EvWorkerEvict, id, map[string]string{
			"epoch": strconv.FormatUint(lb.members[id].Epoch, 10),
		})
		outs = append(outs, lb.depart(id, now)...)
	}
	return outs
}

// depart removes a member, folds its final counters into the quiescence
// reconciliation, reclaims custody of its last-reported frontier plus
// any unacknowledged LB batches addressed to it, and re-seats everything
// onto a survivor (or holds it as an orphan until one joins).
func (lb *LoadBalancer) depart(id int, now time.Time) []Outbound {
	m := lb.members[id]
	delete(lb.members, id)
	lb.evicted[id] = m.Epoch
	if lb.cfg.DataPlane == DataPlaneDepth {
		// Depth mode voids the departed member entirely: its counted
		// terminals all live inside its owned units, the units return to
		// the unclaimed pool, and whoever is granted them next re-derives
		// and recounts the whole unit from its own copy of the shared
		// tree. Folding the departed counters in as well would double
		// count; dropping them keeps the total exact.
		reclaimed := 0
		for u, owner := range lb.unitOwner {
			if owner == id {
				lb.unitOwner[u] = -1
				reclaimed++
			}
		}
		if reclaimed > 0 {
			lb.unitReclaims += reclaimed
			lb.journal.AppendAt(now, obs.EvUnitReclaim, id, map[string]string{
				"units": strconv.Itoa(reclaimed),
			})
		}
		delete(lb.unitSentAt, id)
		outs := []Outbound{{To: Broadcast, Msg: Message{
			Kind: MsgEvict, From: id, Epoch: m.Epoch, Members: lb.memberView(),
		}}}
		return append(outs, lb.rebalanceStrategies()...)
	}
	if acked, acknowledged := lb.reseatAcked[m.Epoch]; acknowledged {
		// A previous LB incarnation already departed this member — at an
		// accounting cut this (promoted) balancer never saw — and a
		// survivor imported its re-seated frontier: the record echoed
		// with the ack is the member's true cut. Substitute it and skip
		// re-seating; acting on the stale replicated record instead would
		// re-explore work the survivor already did (double count), and
		// skipping without the substitution would drop the progress
		// between the replicated cut and the true one (undercount).
		rec := acked.Rec
		lb.gone = append(lb.gone, rec)
		if rec.Obs != nil {
			lb.goneObs.Merge(*rec.Obs)
		} else {
			lb.goneObs.Merge(m.Obs)
		}
		lb.goneSent += rec.JobsSent
		lb.goneRecv += rec.JobsRecv
		lb.reseatSent += uint64(acked.Jobs)
	} else if m.Reported {
		// The accounting record's counters match the latest status
		// (workers send a full status on every transfer), and everything
		// explored after it is re-explored by whoever inherits the
		// frontier — counted exactly once either way.
		rec := m.Record()
		lb.gone = append(lb.gone, rec)
		lb.goneObs.Merge(m.Obs)
		lb.goneSent += rec.JobsSent
		lb.goneRecv += rec.JobsRecv
		if n := rec.Frontier.Count(); n > 0 {
			lb.orphans = append(lb.orphans, &custodyBatch{
				jt: rec.Frontier, n: n, id: m.Epoch, rec: custodyRecord(m),
			})
		}
	}
	var rehome []uint64
	for bid, b := range lb.reseats {
		if b.dst == id {
			rehome = append(rehome, bid)
		}
	}
	sort.Slice(rehome, func(i, j int) bool { return rehome[i] < rehome[j] })
	for _, bid := range rehome {
		lb.orphans = append(lb.orphans, lb.reseats[bid])
		delete(lb.reseats, bid)
	}
	outs := []Outbound{{To: Broadcast, Msg: Message{
		Kind: MsgEvict, From: id, Epoch: m.Epoch, Members: lb.memberView(),
	}}}
	outs = append(outs, lb.placeOrphans(now)...)
	// Membership shrank: restore the portfolio's desired allocation (a
	// departed member may have been a spec's only runner).
	return append(outs, lb.rebalanceStrategies()...)
}

// custodyRecord builds the accounting record shipped with a departed
// member's custody batch: its counters at the accounting cut plus its
// accounted metrics as a cumulative snapshot, bulk fields stripped.
func custodyRecord(m *Member) *Status {
	rec := m.Record()
	rec.Frontier = nil
	rec.CovWords = nil
	rec.Acks = nil
	rec.ReseatAcks = nil
	o := m.Obs.Clone()
	rec.Obs = &o
	rec.ObsBase = true
	return &rec
}

// placeOrphans delivers held custody batches to the least-loaded
// reported member. Each batch's job count enters the quiescence send
// side exactly once, no matter how often the batch is re-delivered.
func (lb *LoadBalancer) placeOrphans(now time.Time) []Outbound {
	if len(lb.orphans) == 0 || lb.resyncPending {
		// During a post-promotion resync window placement waits: members
		// are still re-reporting, and their ReseatAcks may prove a
		// pending orphan was already imported under the lost primary —
		// placing it first could deliver the same work to a second
		// destination.
		return nil
	}
	dst, ok := lb.leastLoaded()
	if !ok {
		return nil
	}
	var outs []Outbound
	for _, b := range lb.orphans {
		if acked, acknowledged := lb.reseatAcked[b.id]; acknowledged {
			// The lost primary placed this batch after the replication
			// cut and a survivor imported it: drop the duplicate, counting
			// the delivery once on the quiescence send side (the
			// survivor's JobsRecv already counts the receive side).
			if !b.counted {
				lb.reseatSent += uint64(acked.Jobs)
				b.counted = true
			}
			lb.journal.AppendAt(now, obs.EvReseatReplayed, LBFrom, map[string]string{
				"id": strconv.FormatUint(b.id, 10), "jobs": strconv.Itoa(acked.Jobs),
			})
			continue
		}
		b.dst = dst
		b.sentAt = now
		if !b.counted {
			lb.reseatSent += uint64(b.n)
			b.counted = true
		}
		lb.reseats[b.id] = b
		lb.reseatsIssued++
		lb.journal.AppendAt(now, obs.EvCustodyReseat, dst, map[string]string{
			"id": strconv.FormatUint(b.id, 10), "jobs": strconv.Itoa(b.n),
		})
		outs = append(outs, Outbound{To: dst, Msg: Message{
			Kind: MsgJobs, From: LBFrom, Seq: b.id, Jobs: b.jt, Status: b.rec,
		}})
	}
	lb.orphans = nil
	return outs
}

// leastLoaded picks the reported member with the shortest queue
// (deterministic tie-break on id).
func (lb *LoadBalancer) leastLoaded() (int, bool) {
	best, bestQ, found := 0, 0, false
	for id, m := range lb.members {
		if !m.Reported {
			continue
		}
		if !found || m.Last.Queue < bestQ || (m.Last.Queue == bestQ && id < best) {
			best, bestQ, found = id, m.Last.Queue, true
		}
	}
	return best, found
}

// Tick runs the periodic custody maintenance: orphan placement for
// batches that had no survivor at departure time, and re-delivery of
// custody batches whose acknowledgment is overdue (receivers suppress
// duplicates via the sequence high-water mark).
func (lb *LoadBalancer) Tick(now time.Time) []Outbound {
	lb.logRep(RepEntry{Kind: RepTick, T: now.UnixNano()})
	lb.lastNow = now
	outs := lb.placeOrphans(now)
	// Sorted so re-delivery order (and thus the downstream message
	// sequence) is identical across identically-seeded runs and between
	// a primary and its replica.
	ids := make([]uint64, 0, len(lb.reseats))
	for bid := range lb.reseats {
		ids = append(ids, bid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, bid := range ids {
		b := lb.reseats[bid]
		if lb.members[b.dst] == nil {
			continue // re-homed on that member's departure
		}
		if !b.sentAt.IsZero() && now.Sub(b.sentAt) > lb.cfg.Lease {
			b.sentAt = now
			outs = append(outs, Outbound{To: b.dst, Msg: Message{
				Kind: MsgJobs, From: LBFrom, Seq: b.id, Jobs: b.jt, Status: b.rec,
			}})
		}
	}
	if lb.unitOwner != nil {
		outs = append(outs, lb.grantUnits(now)...)
	}
	// Periodic portfolio reweighting: recompute the yield-weighted
	// allocation and move workers if it shifted. A no-op between shifts.
	// The learner (when enabled) piggybacks on the same cadence: every
	// LearnEvery-th reweight pass it compares incumbent and challenger
	// dist-opt slots on the bandit's record and may rewrite slot specs
	// before the rebalance runs.
	if len(lb.cfg.Portfolio) > 0 && lb.cfg.ReweightEvery > 0 {
		lb.reweightTicks++
		if lb.reweightTicks >= lb.cfg.ReweightEvery {
			lb.reweightTicks = 0
			lb.reweights++
			lb.journal.AppendAt(now, obs.EvReweight, LBFrom, map[string]string{
				"pass": strconv.Itoa(lb.reweights),
			})
			// Close the bandit's observation window: one pull per manned
			// slot, rewarded with the window's accumulated yield. Unmanned
			// slots produce no evidence and are not pulled.
			if lb.bandit != nil {
				counts := lb.specCounts()
				for i := range lb.windowYield {
					if counts[i] > 0 {
						lb.bandit.observe(i, lb.windowYield[i])
					}
					lb.windowYield[i] = 0
				}
			}
			if lb.learner != nil {
				outs = append(outs, lb.learner.step()...)
			}
			outs = append(outs, lb.rebalanceStrategies()...)
		}
	}
	return outs
}

// Ship relays a job batch on behalf of a worker whose peer link to Dst
// is unavailable (or that runs in relay mode). The payload re-emerges
// as an ordinary MsgJobs with the original (From, Epoch, Seq), so the
// receiver's gap rule, its ack high-water marks, and the sender's
// custody records are oblivious to which channel carried the batch.
// Relay traffic is deliberately not replicated: a batch in flight
// through a lost primary is re-sent by its custodial owner after the
// resend timeout, exactly like a batch lost on a dead peer link.
func (lb *LoadBalancer) Ship(m Message) []Outbound {
	lb.relayedBatches++
	lb.relayedBytes += uint64(payloadBytes(m.Jobs))
	if lb.members[m.Dst] == nil {
		// Destination already departed: drop. The sender re-imports the
		// batch when it processes the eviction notice.
		return nil
	}
	fwd := m
	fwd.Kind = MsgJobs
	return []Outbound{{To: m.Dst, Msg: fwd}}
}

// grantUnits hands unclaimed depth-partition units to idle members and
// re-delivers possibly-lost grants. Runs inside Tick (a logged entry),
// reads only replicated state, and iterates members in sorted id order,
// so a replica replaying the log builds the identical unit table.
// Grants are suspended during a post-promotion resync window: members'
// unit claims (statuses) must reconcile first, or a unit granted by the
// lost primary inside the replication gap could be granted twice.
func (lb *LoadBalancer) grantUnits(now time.Time) []Outbound {
	if lb.resyncPending {
		return nil
	}
	ids := make([]int, 0, len(lb.members))
	for id := range lb.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var unclaimed []int
	for u, owner := range lb.unitOwner {
		if owner == -1 {
			unclaimed = append(unclaimed, u)
		}
	}
	var outs []Outbound
	if len(unclaimed) > 0 && len(ids) > 0 {
		chunk := (len(unclaimed) + len(ids) - 1) / len(ids)
		next := 0
		for _, id := range ids {
			if next >= len(unclaimed) {
				break
			}
			m := lb.members[id]
			// Only idle members claim: a busy worker is still draining a
			// previous grant (or the shared upper tree).
			if !m.Reported || m.Last.Queue > 0 || !m.Last.Done {
				continue
			}
			granted := unclaimed[next:min(next+chunk, len(unclaimed))]
			next += len(granted)
			for _, u := range granted {
				lb.unitOwner[u] = id
			}
			lb.unitGrants += len(granted)
			// Clearing Done holds off both a second grant and quiescence
			// until the worker has folded this one in and re-reported.
			m.Last.Done = false
			lb.unitSentAt[id] = now
			lb.journal.AppendAt(now, obs.EvUnitGrant, id, map[string]string{
				"units": strconv.Itoa(len(granted)),
				"first": strconv.Itoa(granted[0]),
			})
			outs = append(outs, Outbound{To: id, Msg: Message{Kind: MsgUnits, Units: lb.ownedUnits(id)}})
		}
	}
	// Re-delivery: a member whose status does not yet claim every unit it
	// owns may have lost the MsgUnits (dead conn, promotion gap). The
	// full owned list is idempotent, so re-sending is always safe; the
	// lease paces it to one retry per silence period.
	for _, id := range ids {
		owned := lb.ownedUnits(id)
		if len(owned) == 0 || len(lb.members[id].Last.Units) == len(owned) {
			continue
		}
		if sent, ok := lb.unitSentAt[id]; ok && now.Sub(sent) <= lb.cfg.Lease {
			continue
		}
		lb.unitSentAt[id] = now
		outs = append(outs, Outbound{To: id, Msg: Message{Kind: MsgUnits, Units: owned}})
	}
	return outs
}

// ownedUnits returns the sorted unit ids owned by member id.
func (lb *LoadBalancer) ownedUnits(id int) []int {
	var out []int
	for u, owner := range lb.unitOwner {
		if owner == id {
			out = append(out, u)
		}
	}
	return out
}

// unclaimedUnits counts depth-partition units with no owner.
func (lb *LoadBalancer) unclaimedUnits() int {
	n := 0
	for _, owner := range lb.unitOwner {
		if owner == -1 {
			n++
		}
	}
	return n
}

// GlobalCoverage returns the merged coverage vector and whether it
// changed since the last call.
func (lb *LoadBalancer) GlobalCoverage() (*coverage.BitVec, bool) {
	dirty := lb.covDirty
	lb.covDirty = false
	return lb.cov, dirty
}

// Statuses returns the latest statuses of current members plus the
// final statuses of departed members (read-only copies, ordered by
// worker id; departed entries keep their original ids).
func (lb *LoadBalancer) Statuses() []Status {
	out := make([]Status, 0, len(lb.members)+len(lb.gone))
	for _, m := range lb.members {
		if m.Reported {
			out = append(out, m.Last)
		}
	}
	out = append(out, lb.gone...)
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// GoneStatuses returns the final statuses of departed members.
func (lb *LoadBalancer) GoneStatuses() []Status {
	return append([]Status(nil), lb.gone...)
}

// MemberRecord returns the accounting record of a current member, if id
// is one and has reported. Used for final accounting of workers that
// departed without their departure being processed (e.g. a crash whose
// lease had not lapsed when the run ended).
func (lb *LoadBalancer) MemberRecord(id int) (Status, bool) {
	m := lb.members[id]
	if m == nil || !m.Reported {
		return Status{}, false
	}
	return m.Record(), true
}

// TotalQueue sums the reported queue lengths of current members.
func (lb *LoadBalancer) TotalQueue() int {
	n := 0
	for _, m := range lb.members {
		n += m.Last.Queue
	}
	return n
}

// TotalPaths sums explored paths across current and departed members.
func (lb *LoadBalancer) TotalPaths() uint64 {
	var n uint64
	for _, m := range lb.members {
		n += m.Last.Paths
	}
	for _, st := range lb.gone {
		n += st.Paths
	}
	return n
}

// StatesTransferred sums jobs actually received from peer workers
// (JobTree.Count on receipt, Fig. 12's numerator) across current and
// departed members — not the requested order sizes, which overcount
// when a source has fewer jobs than reported.
func (lb *LoadBalancer) StatesTransferred() int {
	n := 0
	for _, m := range lb.members {
		n += int(m.Last.TransferredIn)
	}
	for _, st := range lb.gone {
		n += int(st.TransferredIn)
	}
	return n
}

// Journal returns the LB's run-event journal (membership, custody and
// portfolio events).
func (lb *LoadBalancer) Journal() *obs.Journal { return lb.journal }

// FleetObs folds the fleet-wide metrics view: every live member's
// accounted metrics (as of its last full status), the merged metrics of
// departed members, and the LB's own membership, custody and portfolio
// counters under the c9_lb_* names. Merge is associative and
// commutative, so the fold order does not affect the result.
func (lb *LoadBalancer) FleetObs() obs.Snapshot {
	s := obs.Snapshot{}
	for _, m := range lb.members {
		s.Merge(m.Obs)
	}
	s.Merge(lb.goneObs)
	lb.PutLBMetrics(&s)
	return s
}

// MemberObs returns a current member's accounted metrics (as of its
// last full status), if id is a reported member.
func (lb *LoadBalancer) MemberObs(id int) (obs.Snapshot, bool) {
	m := lb.members[id]
	if m == nil || !m.Reported {
		return obs.Snapshot{}, false
	}
	return m.Obs, true
}

// GoneObs returns the merged accounted metrics of departed members.
func (lb *LoadBalancer) GoneObs() obs.Snapshot { return lb.goneObs }

// PutLBMetrics writes the LB's own membership, custody and portfolio
// metrics into a snapshot — shared by FleetObs and by cluster.Run's
// final fold, which has fresher per-worker data than the LB's records.
func (lb *LoadBalancer) PutLBMetrics(s *obs.Snapshot) {
	s.PutGauge(obs.MLBMembers, int64(len(lb.members)))
	s.PutCounter(obs.MLBJoins, uint64(lb.joins))
	s.PutCounter(obs.MLBEvictions, uint64(lb.Evictions))
	s.PutCounter(obs.MLBLeaves, uint64(lb.Leaves))
	s.PutCounter(obs.MLBTransfersIssued, uint64(lb.TransfersIssued))
	s.PutCounter(obs.MLBStatesTransferred, uint64(lb.StatesTransferred()))
	s.PutCounter(obs.MLBReseats, uint64(lb.reseatsIssued))
	s.PutCounter(obs.MLBReseatJobs, lb.reseatSent)
	s.PutCounter(obs.MLBReweights, uint64(lb.reweights))
	s.PutCounter(obs.MLBRebalances, uint64(lb.rebalances))
	s.PutCounter(obs.MLBAdoptions, uint64(lb.Adoptions()))
	s.PutGauge(obs.MLBCoverageLines, int64(lb.cov.Count()))
	// Data-plane metrics go in unconditionally: a zero
	// c9_lb_payload_bytes_total is the P2P mode's proof obligation (CI
	// asserts it), so the zero must be visible, not absent.
	s.PutCounter(obs.MLBPayloadBytes, lb.relayedBytes)
	s.PutCounter(obs.MLBRelayedBatches, uint64(lb.relayedBatches))
	s.PutCounter(obs.MLBUnitGrants, uint64(lb.unitGrants))
	s.PutCounter(obs.MLBUnitReclaims, uint64(lb.unitReclaims))
	s.PutGauge(obs.MLBUnitsUnclaimed, int64(lb.unclaimedUnits()))
	s.PutCounter(obs.MLBRepSnapshots, uint64(lb.repSnapshots))
	s.PutGauge(obs.MLBTerm, int64(lb.term))
	s.PutCounter(obs.MLBPromotions, uint64(lb.promotions))
	s.PutCounter(obs.MLBReadmits, uint64(lb.readmits))
	if lb.repEnabled {
		s.PutCounter(obs.MLBRepEntries, lb.repSeq)
	}
	for i, y := range lb.specYield {
		s.PutCounter(obs.MLBSlotYield(i), y)
	}
	if len(lb.cfg.Portfolio) > 0 {
		for i, c := range lb.specCounts() {
			s.PutGauge(obs.MLBSlotWorkers(i), int64(c))
		}
	}
}

// Quiescent reports global completion: at least one member, every
// member reported idle with an empty queue, no orphaned custody, and
// the send/receive reconciliation balanced across live members,
// departed members' final counters, and the LB's own re-seat
// deliveries. In-flight or unprocessed job batches keep the counters
// unbalanced, so termination cannot be declared while work is moving.
func (lb *LoadBalancer) Quiescent() bool {
	if len(lb.members) == 0 || len(lb.orphans) > 0 {
		return false
	}
	var sent, recv uint64
	for _, m := range lb.members {
		if !m.Reported || m.Last.Queue > 0 {
			return false
		}
		sent += m.Last.JobsSent
		recv += m.Last.JobsRecv
	}
	if lb.unitOwner != nil {
		// Depth mode additionally requires the whole partition to be
		// claimed, every owner to acknowledge its grants (a granted-but-
		// undelivered unit holds termination open), and every member to
		// have finished its last fold-in.
		if lb.unclaimedUnits() > 0 {
			return false
		}
		for id, m := range lb.members {
			if !m.Last.Done || len(m.Last.Units) != len(lb.ownedUnits(id)) {
				return false
			}
		}
	}
	return sent+lb.goneSent+lb.reseatSent == recv+lb.goneRecv
}

// Balance computes transfer orders per the paper's algorithm: classify
// workers against mean ± δ·σ of queue lengths, sort, and pair
// underloaded with overloaded workers, requesting (lj − li)/2 jobs.
func (lb *LoadBalancer) Balance() []TransferOrder {
	if !lb.Enabled || lb.cfg.DataPlane == DataPlaneDepth {
		// Depth mode has no job shipping to balance: work distribution is
		// entirely unit grants. Returning before logRep keeps primary and
		// replica symmetric (neither logs nor replays Balance entries).
		return nil
	}
	lb.logRep(RepEntry{Kind: RepBalance, T: lb.lastNow.UnixNano()})
	type wl struct {
		id int
		l  int
	}
	var ws []wl
	for id, m := range lb.members {
		if !m.Reported {
			continue
		}
		ws = append(ws, wl{id, m.Last.Queue})
	}
	if len(ws) < 2 {
		return nil
	}
	// Sort before any arithmetic: float accumulation is not associative,
	// so σ's partial sums must be taken in one canonical order for a
	// replica replaying this entry to classify identically.
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].l != ws[j].l {
			return ws[i].l < ws[j].l
		}
		return ws[i].id < ws[j].id
	})
	var sum float64
	for _, w := range ws {
		sum += float64(w.l)
	}
	n := float64(len(ws))
	mean := sum / n
	var varsum float64
	for _, w := range ws {
		d := float64(w.l) - mean
		varsum += d * d
	}
	sigma := math.Sqrt(varsum / n)

	under := func(l int) bool { return float64(l) < math.Max(mean-lb.cfg.Delta*sigma, 0) }
	over := func(l int) bool { return float64(l) > mean+lb.cfg.Delta*sigma }
	var orders []TransferOrder
	lo, hi := 0, len(ws)-1
	for lo < hi {
		// Starved workers (0 jobs) count as underloaded even when σ is
		// degenerate, as long as a peer has work to spare.
		starved := ws[lo].l == 0 && ws[hi].l >= 2
		if !under(ws[lo].l) && !starved {
			break // receivers exhausted (sorted: inner ones are closer to the mean)
		}
		if !over(ws[hi].l) && !starved {
			hi-- // donor exhausted (possibly by an earlier order); try the next-heaviest
			continue
		}
		k := (ws[hi].l - ws[lo].l) / 2
		if k < lb.cfg.MinTransfer {
			break
		}
		orders = append(orders, TransferOrder{Src: ws[hi].id, Dst: ws[lo].id, NJobs: k})
		lb.TransfersIssued++
		// Water-filling: the donor keeps giving while it has surplus, so
		// several starved workers (e.g. late joiners) are all fed in one
		// round instead of the lowest id winning every tie.
		ws[hi].l -= k
		lo++
	}
	return orders
}

// Promotion: the strides the id and epoch counters take when a standby
// becomes primary. They must exceed anything the lost primary could
// plausibly have handed out after the replication cut, so that (a) the
// new primary never re-issues an id/epoch the old one gave a worker the
// standby missed, and (b) such workers are recognizable: an unknown
// member whose epoch falls inside the stride window can only have been
// admitted by the lost primary.
const (
	promoteIDStride    = 1 << 10
	promoteEpochStride = 1 << 20
)

// promote turns this balancer into the primary of the next term. Called
// by Replica.Promote on a live standby, and replayed (via RepPromote)
// by any standby chained behind it. The journal records the full
// promotion sequence — primary-lost, standby-promoted, epoch-bump — and
// a resync window opens during which evictions and orphan placement are
// suspended (see ExpireLeases, placeOrphans) until every member has
// re-reported a full frontier snapshot or 2×Lease has passed; its close
// is journaled as resync.
func (lb *LoadBalancer) promote(now time.Time) {
	lb.lastNow = now
	lb.journal.AppendAt(now, obs.EvPrimaryLost, LBFrom, map[string]string{
		"term": strconv.FormatUint(lb.term, 10),
	})
	lb.term++
	lb.promotions++
	lb.journal.AppendAt(now, obs.EvStandbyPromote, LBFrom, map[string]string{
		"term":    strconv.FormatUint(lb.term, 10),
		"members": strconv.Itoa(len(lb.members)),
		"applied": strconv.FormatUint(lb.repSeq, 10),
	})
	lb.readmitLo = lb.nextEpoch
	lb.nextEpoch += promoteEpochStride
	lb.readmitHi = lb.nextEpoch
	lb.nextID += promoteIDStride
	lb.journal.AppendAt(now, obs.EvEpochBump, LBFrom, map[string]string{
		"next_epoch": strconv.FormatUint(lb.nextEpoch, 10),
		"next_id":    strconv.Itoa(lb.nextID),
	})
	// Restart every lease and custody-redelivery clock: the replicated
	// LastSeen/sentAt values are cuts of the old primary's timeline, and
	// nobody could renew while there was no primary to hear them.
	for _, m := range lb.members {
		m.LastSeen = now
		m.resynced = false
	}
	for _, b := range lb.reseats {
		if !b.sentAt.IsZero() {
			b.sentAt = now
		}
	}
	for id := range lb.unitSentAt {
		lb.unitSentAt[id] = now
	}
	lb.resyncPending = len(lb.members) > 0
	lb.resyncUntil = now.Add(2 * lb.cfg.Lease)
	// Workers may have merged coverage the replication cut missed; force
	// a broadcast of the (replicated) overlay so re-handshaking members
	// reconverge on it.
	lb.covDirty = true
	lb.logRep(RepEntry{Kind: RepPromote, T: now.UnixNano()})
}

// resyncTick decides whether the post-promotion resync window may
// close: every member has re-reported a full snapshot, or the deadline
// (2×Lease after promotion) has passed. Returns true once closed,
// journaling the resync event with how many members were still stale.
func (lb *LoadBalancer) resyncTick(now time.Time) bool {
	stale := 0
	for _, m := range lb.members {
		if !m.resynced {
			stale++
		}
	}
	if stale > 0 && now.Before(lb.resyncUntil) {
		return false
	}
	lb.resyncPending = false
	lb.journal.AppendAt(now, obs.EvResync, LBFrom, map[string]string{
		"members": strconv.Itoa(len(lb.members)),
		"stale":   strconv.Itoa(stale),
	})
	return true
}

// ResyncDone reports that no post-promotion resync window is open (true
// on a balancer that never promoted).
func (lb *LoadBalancer) ResyncDone() bool { return !lb.resyncPending }

// Promotions returns how many standby promotions this balancer's
// history includes (0 for an undisturbed primary).
func (lb *LoadBalancer) Promotions() int { return lb.promotions }

// canReadmit reports whether an unknown (id, epoch) pair is a member the
// lost primary admitted during the replication gap: the epoch falls in
// the stride window only that primary could have issued from, and this
// incarnation neither knows nor evicted the worker.
func (lb *LoadBalancer) canReadmit(id int, epoch uint64) bool {
	if lb.members[id] != nil {
		return false
	}
	if e, gone := lb.evicted[id]; gone && e >= epoch {
		return false
	}
	return epoch > lb.readmitLo && epoch <= lb.readmitHi
}

// Readmit re-admits a worker the lost primary joined after the
// replication cut, keeping the id and epoch that worker already runs
// under. Returns nil when (id, epoch) is not readmittable.
func (lb *LoadBalancer) Readmit(id int, epoch uint64, addr string, now time.Time) (*Member, []Outbound) {
	if !lb.canReadmit(id, epoch) {
		return nil, nil
	}
	lb.logRep(RepEntry{Kind: RepReadmit, From: id, Epoch: epoch, Addr: addr, T: now.UnixNano()})
	lb.lastNow = now
	specIdx, spec := lb.assignSpec()
	m := &Member{ID: id, Epoch: epoch, Addr: addr, LastSeen: now,
		Spec: spec, SpecIdx: specIdx}
	lb.members[id] = m
	lb.joins++
	lb.readmits++
	if id >= lb.nextID {
		lb.nextID = id + 1
	}
	lb.journal.AppendAt(now, obs.EvWorkerJoin, id, map[string]string{
		"epoch": strconv.FormatUint(epoch, 10), "spec": spec, "readmit": "1",
	})
	return m, []Outbound{{To: Broadcast, Msg: Message{Kind: MsgMembers, Members: lb.memberView()}}}
}

// ShutdownMarker appends the terminal replication entry: the primary is
// exiting cleanly, so attached standbys must not treat the stream's end
// as a crash and promote.
func (lb *LoadBalancer) ShutdownMarker(now time.Time) {
	lb.logRep(RepEntry{Kind: RepShutdown, T: now.UnixNano()})
}
