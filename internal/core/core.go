// Package core is the top-level facade of the platform: one-call APIs
// to symbolically test a program on a single node or across a cluster
// of workers. It wires together the compiler (internal/cc), the POSIX
// model (internal/posix), the exploration engine (internal/engine) and
// the cluster fabric (internal/cluster); the lower-level packages remain
// available for fine-grained control.
package core

import (
	"fmt"
	"time"

	cfganalysis "cloud9/internal/cfg"
	"cloud9/internal/cluster"
	"cloud9/internal/engine"
	"cloud9/internal/interp"
	"cloud9/internal/posix"
	"cloud9/internal/state"
	"cloud9/internal/tree"
)

// StrategyName selects a search strategy.
type StrategyName string

// Available strategies.
const (
	StrategyInterleaved  StrategyName = "interleaved" // random-path + cov-opt (paper default)
	StrategyDFS          StrategyName = "dfs"
	StrategyBFS          StrategyName = "bfs"
	StrategyRandom       StrategyName = "random"
	StrategyRandomPath   StrategyName = "random-path"
	StrategyCoverage     StrategyName = "cov-opt"
	StrategyDistance     StrategyName = "dist-opt" // static distance-to-uncovered (md2u)
	StrategyFewestFaults StrategyName = "fewest-faults"
)

// Options configures a symbolic test run.
type Options struct {
	// Entry is the function to start from (default "main").
	Entry string
	// Strategy selects candidate ordering (default StrategyInterleaved).
	Strategy StrategyName
	// MaxPathSteps is the per-path instruction budget for hang detection
	// (default 2,000,000).
	MaxPathSteps uint64
	// MaxPaths stops exploration after that many completed paths
	// (0 = run to exhaustion).
	MaxPaths int
	// RecordAllTests keeps a test case for every path, not only bugs.
	RecordAllTests bool
	// HostFS is a read-only host filesystem snapshot visible to open().
	HostFS map[string][]byte
	// Seed feeds the randomized strategies.
	Seed int64
}

func (o *Options) fill() {
	if o.Entry == "" {
		o.Entry = "main"
	}
	if o.Strategy == "" {
		o.Strategy = StrategyInterleaved
	}
	if o.MaxPathSteps == 0 {
		o.MaxPathSteps = 2_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *Options) engineConfig() engine.Config {
	cfg := engine.Config{
		MaxStateSteps:  o.MaxPathSteps,
		RecordAllTests: o.RecordAllTests,
	}
	seed := o.Seed
	switch o.Strategy {
	case StrategyDFS:
		cfg.Strategy = func(*tree.Tree, *cfganalysis.Distance) engine.Strategy { return engine.NewDFS() }
	case StrategyBFS:
		cfg.Strategy = func(*tree.Tree, *cfganalysis.Distance) engine.Strategy { return engine.NewBFS() }
	case StrategyRandom:
		cfg.Strategy = func(*tree.Tree, *cfganalysis.Distance) engine.Strategy { return engine.NewRandom(seed) }
	case StrategyRandomPath:
		cfg.Strategy = func(t *tree.Tree, _ *cfganalysis.Distance) engine.Strategy { return engine.NewRandomPath(t, seed) }
	case StrategyCoverage:
		cfg.Strategy = func(*tree.Tree, *cfganalysis.Distance) engine.Strategy { return engine.NewCoverageOptimized(seed) }
	case StrategyDistance:
		cfg.Strategy = func(_ *tree.Tree, d *cfganalysis.Distance) engine.Strategy {
			return engine.NewDistanceOptimized(d, seed)
		}
	case StrategyFewestFaults:
		cfg.Strategy = func(*tree.Tree, *cfganalysis.Distance) engine.Strategy { return engine.NewFewestFaults() }
	case StrategyInterleaved:
		// engine default
	}
	return cfg
}

// Report summarizes a symbolic test run.
type Report struct {
	Paths        uint64
	Errors       uint64
	Hangs        uint64
	Instructions uint64
	// CoveredLines / CoverableLines give line coverage of the target
	// (model prelude excluded).
	CoveredLines   int
	CoverableLines int
	// Tests holds the generated test cases (bugs always; all paths when
	// Options.RecordAllTests).
	Tests []engine.TestCase
	// Exhausted reports whether the whole path space was explored.
	Exhausted bool
}

// Bugs returns the error/hang test cases.
func (r *Report) Bugs() []engine.TestCase {
	var out []engine.TestCase
	for _, tc := range r.Tests {
		if tc.Kind == state.TermError || tc.Kind == state.TermHang {
			out = append(out, tc)
		}
	}
	return out
}

// newInterp compiles source with the POSIX model installed.
func newInterp(name, source string, hostFS map[string][]byte) (*interp.Interp, error) {
	prog, err := posix.CompileTarget(name, source)
	if err != nil {
		return nil, err
	}
	in := interp.New(prog)
	posix.Install(in, posix.Options{HostFS: hostFS})
	return in, nil
}

// Test symbolically executes a C-subset program on a single node and
// returns the report.
func Test(name, source string, opts Options) (*Report, error) {
	opts.fill()
	in, err := newInterp(name, source, opts.HostFS)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(in, opts.Entry, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	for {
		more, err := e.Step()
		if err != nil {
			return nil, fmt.Errorf("core: exploration failed: %w", err)
		}
		if !more {
			break
		}
		if opts.MaxPaths > 0 && int(e.Stats.PathsExplored) >= opts.MaxPaths {
			break
		}
	}
	return &Report{
		Paths:          e.Stats.PathsExplored,
		Errors:         e.Stats.Errors,
		Hangs:          e.Stats.Hangs,
		Instructions:   e.Stats.UsefulSteps,
		CoveredLines:   e.Cov.Count(),
		CoverableLines: in.Prog.CoverableLines(),
		Tests:          e.Tests,
		Exhausted:      e.Done(),
	}, nil
}

// ClusterOptions extends Options for parallel runs.
type ClusterOptions struct {
	Options
	// Workers is the cluster size (default 4).
	Workers int
	// MaxDuration bounds wall-clock time (default 10 minutes).
	MaxDuration time.Duration
}

// TestCluster symbolically executes a program on an in-process cluster
// of shared-nothing workers with dynamic load balancing.
func TestCluster(name, source string, opts ClusterOptions) (*Report, error) {
	opts.fill()
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxDuration == 0 {
		opts.MaxDuration = 10 * time.Minute
	}
	res, err := cluster.Run(cluster.Config{
		Workers: opts.Workers,
		Entry:   opts.Entry,
		NewInterp: func() (*interp.Interp, error) {
			return newInterp(name, source, opts.HostFS)
		},
		Engine:      opts.engineConfig(),
		MaxDuration: opts.MaxDuration,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Paths:        res.Final.Paths,
		Errors:       res.Final.Errors,
		Hangs:        res.Final.Hangs,
		Instructions: res.Final.UsefulSteps,
		Exhausted:    res.Exhausted,
	}
	var coverable int
	for _, w := range res.Workers {
		rep.Tests = append(rep.Tests, w.Exp.Tests...)
		if c := w.Exp.Cov.Count(); c > rep.CoveredLines {
			rep.CoveredLines = c // upper bound; LB holds the OR-merged view
		}
		coverable = w.Exp.In.Prog.CoverableLines()
	}
	rep.CoverableLines = coverable
	return rep, nil
}
