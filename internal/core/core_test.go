package core

import (
	"testing"
	"time"

	"cloud9/internal/state"
)

const buggy = `
int parse(char *b) {
	if (b[0] == 'X' && b[1] == 'Y') abort();
	return 0;
}
int main() {
	char b[2];
	cloud9_make_symbolic(b, 2, "in");
	return parse(b);
}`

func TestSingleNodeFindsBug(t *testing.T) {
	rep, err := Test("buggy.c", buggy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exhausted {
		t.Fatal("should exhaust the space")
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs = %d", len(bugs))
	}
	if in := bugs[0].Inputs["in"]; len(in) != 2 || in[0] != 'X' || in[1] != 'Y' {
		t.Fatalf("witness = %v", bugs[0].Inputs)
	}
	if rep.CoverableLines == 0 || rep.CoveredLines == 0 {
		t.Fatal("coverage accounting empty")
	}
}

func TestAllStrategiesAgreeOnPathCount(t *testing.T) {
	var counts []uint64
	for _, s := range []StrategyName{StrategyDFS, StrategyBFS, StrategyRandom,
		StrategyRandomPath, StrategyCoverage, StrategyInterleaved} {
		rep, err := Test("buggy.c", buggy, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		counts = append(counts, rep.Paths)
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("exhaustive path counts differ across strategies: %v", counts)
		}
	}
}

func TestMaxPathsStopsEarly(t *testing.T) {
	rep, err := Test("buggy.c", buggy, Options{MaxPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Paths != 1 || rep.Exhausted {
		t.Fatalf("paths=%d exhausted=%v", rep.Paths, rep.Exhausted)
	}
}

func TestClusterMatchesSingleNode(t *testing.T) {
	single, err := Test("buggy.c", buggy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := TestCluster("buggy.c", buggy, ClusterOptions{
		Workers: 3,
		Options: Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clustered.Exhausted {
		t.Fatal("cluster should exhaust")
	}
	if clustered.Paths != single.Paths {
		t.Fatalf("cluster %d paths vs single %d (must be disjoint and complete)",
			clustered.Paths, single.Paths)
	}
	if clustered.Errors != 1 {
		t.Fatalf("cluster errors = %d", clustered.Errors)
	}
}

func TestHostFSVisible(t *testing.T) {
	rep, err := Test("fs.c", `
		int main() {
			int fd = open("/etc/passwd", O_RDONLY);
			if (fd < 0) abort();
			char b[4];
			if (read(fd, b, 4) != 4) abort();
			if (b[0] != 'r') abort();
			return 0;
		}`, Options{HostFS: map[string][]byte{"/etc/passwd": []byte("root:x")}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("host FS not visible: %d errors", rep.Errors)
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	if _, err := Test("bad.c", "int main( {", Options{}); err == nil {
		t.Fatal("compile error should surface")
	}
}

func TestClusterTimeBound(t *testing.T) {
	// A large space with a tight duration must stop by the bound.
	big := `
	int main() {
		char b[12];
		cloud9_make_symbolic(b, 12, "in");
		int i;
		int n = 0;
		for (i = 0; i < 12; i++) if (b[i] > 100) n++;
		return n;
	}`
	start := time.Now()
	rep, err := TestCluster("big.c", big, ClusterOptions{
		Workers:     2,
		MaxDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Second {
		t.Fatal("duration bound ignored")
	}
	if rep.Paths == 0 {
		t.Fatal("no progress within bound")
	}
}

func TestFewestFaultsStrategyRuns(t *testing.T) {
	rep, err := Test("fi.c", `
		int main() {
			int fds[2];
			pipe(fds);
			cloud9_fi_enable();
			ioctl(fds[1], SIO_FAULT_INJ, 1);
			int i;
			for (i = 0; i < 3; i++) __px_write_try(fds[1], "x", 1);
			return 0;
		}`, Options{Strategy: StrategyFewestFaults, RecordAllTests: true})
	if err != nil {
		t.Fatal(err)
	}
	// 3 independent injection points: 8 paths.
	if rep.Paths != 8 {
		t.Fatalf("paths = %d, want 8", rep.Paths)
	}
	byFaults := map[int]int{}
	for _, tc := range rep.Tests {
		byFaults[tc.Faults]++
	}
	if byFaults[0] != 1 || byFaults[1] != 3 || byFaults[2] != 3 || byFaults[3] != 1 {
		t.Fatalf("fault depth distribution %v", byFaults)
	}
	_ = state.TermError
}
