// Package state models one symbolic execution state: a set of processes
// (each with its own copy-on-write address space), cooperative threads
// with call stacks, a shared CoW domain for inter-process memory, wait
// queues, the path condition, and the branch-choice path from the root of
// the execution tree (the job encoding used for worker-to-worker
// transfers).
package state

import (
	"fmt"

	"cloud9/internal/cvm"
	"cloud9/internal/expr"
	"cloud9/internal/mem"
	"cloud9/internal/solver"
)

// ProcessID identifies a process within a state.
type ProcessID int

// ThreadID identifies a thread within a state.
type ThreadID int

// ThreadStatus is the scheduler-visible thread state.
type ThreadStatus int

// Thread statuses.
const (
	ThreadRunnable ThreadStatus = iota
	ThreadSleeping
	ThreadTerminated
)

// Frame is one activation record.
type Frame struct {
	Fn       *cvm.Func
	Regs     []*expr.Expr
	Block    int
	PC       int
	SlotObjs []*mem.Object // one memory object per stack slot
	RetReg   int           // caller register receiving the return value (-1: none)
}

// Clone deep-copies the frame (register slice copied; expressions are
// immutable and shared; slot objects are identities shared with the
// clone's address space clone).
func (f *Frame) Clone() *Frame {
	dup := *f
	dup.Regs = append([]*expr.Expr(nil), f.Regs...)
	dup.SlotObjs = append([]*mem.Object(nil), f.SlotObjs...)
	return &dup
}

// Thread is a cooperative thread.
type Thread struct {
	ID        ThreadID
	Proc      ProcessID
	Status    ThreadStatus
	Stack     []*Frame
	WaitList  uint64     // wait queue the thread sleeps on (when sleeping)
	Result    *expr.Expr // value passed to thread exit (joinable)
	Joiners   []ThreadID // threads waiting to join this one
	JoinWlist uint64     // wait queue notified when this thread terminates
}

// Clone deep-copies the thread.
func (t *Thread) Clone() *Thread {
	dup := *t
	dup.Stack = make([]*Frame, len(t.Stack))
	for i, f := range t.Stack {
		dup.Stack[i] = f.Clone()
	}
	dup.Joiners = append([]ThreadID(nil), t.Joiners...)
	return &dup
}

// Top returns the active frame.
func (t *Thread) Top() *Frame { return t.Stack[len(t.Stack)-1] }

// Process is an OS-process analog: an address space plus identity.
type Process struct {
	ID         ProcessID
	Parent     ProcessID
	Space      *mem.AddressSpace
	MainThread ThreadID // returning from this thread's entry exits the process
	Exited     bool
	ExitCode   int64
	ExitWlist  uint64     // wait queue notified on exit (for wait())
	Waiters    []ThreadID // threads blocked in wait() for this process
}

// Clone deep-copies process metadata and CoW-clones the address space.
func (p *Process) Clone() *Process {
	dup := *p
	dup.Space = p.Space.Clone()
	dup.Waiters = append([]ThreadID(nil), p.Waiters...)
	return &dup
}

// TerminationKind classifies why a state stopped.
type TerminationKind int

// Termination kinds.
const (
	TermNone      TerminationKind = iota
	TermExit                      // program exited normally
	TermError                     // memory error, assert failure, abort
	TermHang                      // deadlock or instruction-limit hang
	TermUnsatPath                 // infeasible (should not normally surface)
)

// S is one symbolic execution state. It is the unit the engine forks,
// schedules and transfers between workers.
type S struct {
	ID    uint64
	Prog  *cvm.Program
	Procs map[ProcessID]*Process
	// Threads in creation order; index is not the ID.
	Threads map[ThreadID]*Thread
	Shared  *mem.AddressSpace // CoW domain for cloud9_make_shared objects
	Alloc   *mem.Allocator
	Globals map[string]uint64 // global name -> address (identical across states)

	Constraints *solver.ConstraintSet
	Cur         ThreadID

	// Path is the branch-choice string from the tree root: the job
	// encoding (§3.2). Persistent list; shared with parents.
	Path *PathNode

	// Deterministic per-state counters (replay-stable).
	NextTID   ThreadID
	NextPID   ProcessID
	NextWlist uint64
	NextSym   uint64

	WaitLists map[uint64][]ThreadID

	Steps     uint64 // instructions executed along this path
	Forks     int
	Term      TerminationKind
	TermMsg   string
	MaxSteps  uint64 // hang-detection instruction budget (0 = unlimited)
	MaxHeap   int64  // cloud9_set_max_heap (0 = unlimited)
	HeapUsed  int64
	ForkSched bool // fork the state on every scheduling decision

	// SchedBound caps preemptive context switches along a path when
	// ForkSched is on — the iterative context bounding scheduler of
	// Musuvathi et al. that §5.1 lists (0 = unbounded, i.e. exhaustive).
	SchedBound  int
	CtxSwitches int // preemptive switches taken along this path

	// FaultInj enables error-return fault injection (cloud9_fi_enable).
	FaultInj    bool
	FaultsTaken int // number of injected faults along this path

	// Decision carries a predetermined fork choice into a re-executed
	// builtin call (see interp.Ctx.Decide).
	Decision    int
	HasDecision bool

	// Aux carries model-defined per-state values that must fork with the
	// state but hold no guest memory (e.g. scheduling cursor). Values
	// must be immutable or cloned via AuxCloner.
	Aux map[string]interface{}

	// Symbolics records the symbolic input regions created along this
	// path, for test-case rendering.
	Symbolics []SymbolicRegion
}

// SymbolicRegion names a run of symbolic byte variables created by one
// make_symbolic call.
type SymbolicRegion struct {
	Name  string
	First uint64 // first variable id
	Len   int64
}

// PathNode is one branch decision (persistent list to the root).
type PathNode struct {
	Parent *PathNode
	Choice uint8
	Depth  int
}

// AppendChoice extends the path.
func AppendChoice(p *PathNode, c uint8) *PathNode {
	d := 0
	if p != nil {
		d = p.Depth
	}
	return &PathNode{Parent: p, Choice: c, Depth: d + 1}
}

// PathChoices materializes the root-to-leaf choice string.
func PathChoices(p *PathNode) []uint8 {
	if p == nil {
		return nil
	}
	out := make([]uint8, p.Depth)
	for n := p; n != nil; n = n.Parent {
		out[n.Depth-1] = n.Choice
	}
	return out
}

// New creates the initial state for prog with one process and one thread
// stopped at the entry of function entry.
func New(prog *cvm.Program, entry string) (*S, error) {
	fn := prog.Func(entry)
	if fn == nil {
		return nil, fmt.Errorf("state: no function %q", entry)
	}
	s := &S{
		ID:        1,
		Prog:      prog,
		Procs:     map[ProcessID]*Process{},
		Threads:   map[ThreadID]*Thread{},
		Shared:    mem.NewAddressSpace(),
		Alloc:     mem.NewAllocator(0x10000),
		Globals:   map[string]uint64{},
		WaitLists: map[uint64][]ThreadID{},
		NextTID:   1,
		NextPID:   1,
		NextWlist: 1,
		Aux:       map[string]interface{}{},
	}
	p := &Process{ID: s.NextPID, Space: mem.NewAddressSpace()}
	s.NextPID++
	p.ExitWlist = s.NewWaitList()
	s.Procs[p.ID] = p

	// Globals are allocated before any fork, so every state sees them at
	// identical addresses.
	for _, g := range prog.Globals {
		obj := s.Alloc.Allocate(g.Size, "global "+g.Name)
		os := mem.NewObjectState(obj)
		os.InitConcrete(g.Init)
		p.Space.Bind(os)
		s.Globals[g.Name] = obj.Base
	}

	t := &Thread{ID: s.NextTID, Proc: p.ID, Status: ThreadRunnable}
	s.NextTID++
	t.JoinWlist = s.NewWaitList()
	s.Threads[t.ID] = t
	p.MainThread = t.ID
	s.Cur = t.ID
	if err := s.PushFrame(t, fn, nil, -1); err != nil {
		return nil, err
	}
	return s, nil
}

// Fork deep-copies the state for a branch. The caller appends the branch
// constraint and path choice afterwards.
func (s *S) Fork(newID uint64) *S {
	dup := &S{
		ID:          newID,
		Prog:        s.Prog,
		Procs:       make(map[ProcessID]*Process, len(s.Procs)),
		Threads:     make(map[ThreadID]*Thread, len(s.Threads)),
		Shared:      s.Shared.Clone(),
		Alloc:       s.Alloc.Clone(),
		Globals:     s.Globals, // immutable after New
		Constraints: s.Constraints,
		Cur:         s.Cur,
		Path:        s.Path,
		NextTID:     s.NextTID,
		NextPID:     s.NextPID,
		NextWlist:   s.NextWlist,
		NextSym:     s.NextSym,
		WaitLists:   make(map[uint64][]ThreadID, len(s.WaitLists)),
		Steps:       s.Steps,
		Forks:       s.Forks,
		MaxSteps:    s.MaxSteps,
		MaxHeap:     s.MaxHeap,
		HeapUsed:    s.HeapUsed,
		ForkSched:   s.ForkSched,
		SchedBound:  s.SchedBound,
		CtxSwitches: s.CtxSwitches,
		FaultInj:    s.FaultInj,
		FaultsTaken: s.FaultsTaken,
		Aux:         make(map[string]interface{}, len(s.Aux)),
	}
	for id, p := range s.Procs {
		dup.Procs[id] = p.Clone()
	}
	for id, t := range s.Threads {
		dup.Threads[id] = t.Clone()
	}
	for id, q := range s.WaitLists {
		dup.WaitLists[id] = append([]ThreadID(nil), q...)
	}
	for k, v := range s.Aux {
		if c, ok := v.(AuxCloner); ok {
			dup.Aux[k] = c.CloneAux()
		} else {
			dup.Aux[k] = v
		}
	}
	dup.Symbolics = append([]SymbolicRegion(nil), s.Symbolics...)
	dup.Decision = s.Decision
	dup.HasDecision = s.HasDecision
	return dup
}

// AuxCloner lets Aux values define deep-copy behavior on fork.
type AuxCloner interface{ CloneAux() interface{} }

// Release drops memory references held by the state (call when the state
// becomes dead).
func (s *S) Release() {
	for _, p := range s.Procs {
		p.Space.Release()
	}
	s.Shared.Release()
}

// CurThread returns the running thread.
func (s *S) CurThread() *Thread { return s.Threads[s.Cur] }

// CurProc returns the running thread's process.
func (s *S) CurProc() *Process { return s.Procs[s.CurThread().Proc] }

// PushFrame activates fn on thread t with the given argument values.
func (s *S) PushFrame(t *Thread, fn *cvm.Func, args []*expr.Expr, retReg int) error {
	if len(args) != fn.NumParams {
		return fmt.Errorf("state: call %s with %d args, want %d", fn.Name, len(args), fn.NumParams)
	}
	f := &Frame{
		Fn:     fn,
		Regs:   make([]*expr.Expr, fn.NumRegs),
		RetReg: retReg,
	}
	copy(f.Regs, args)
	if n := len(fn.Slots); n > 0 {
		f.SlotObjs = make([]*mem.Object, n)
		space := s.Procs[t.Proc].Space
		for i, size := range fn.Slots {
			obj := s.Alloc.Allocate(size, "local "+fn.Name)
			space.Bind(mem.NewObjectState(obj))
			f.SlotObjs[i] = obj
		}
	}
	t.Stack = append(t.Stack, f)
	return nil
}

// PopFrame removes the top frame, freeing its stack objects, and returns
// it. Returns nil when the stack is empty.
func (s *S) PopFrame(t *Thread) *Frame {
	if len(t.Stack) == 0 {
		return nil
	}
	f := t.Top()
	t.Stack = t.Stack[:len(t.Stack)-1]
	space := s.Procs[t.Proc].Space
	for _, obj := range f.SlotObjs {
		if os := space.Unbind(obj.Base); os != nil {
			os.Unref()
		}
	}
	return f
}

// Resolve finds the object containing addr visible to process pid:
// first the process space, then the shared CoW domain.
func (s *S) Resolve(pid ProcessID, addr uint64) (*mem.AddressSpace, *mem.ObjectState, int64, bool) {
	p := s.Procs[pid]
	if os, off, ok := p.Space.Resolve(addr); ok {
		return p.Space, os, off, true
	}
	if os, off, ok := s.Shared.Resolve(addr); ok {
		return s.Shared, os, off, true
	}
	return nil, nil, 0, false
}

// MakeShared moves the object containing addr from the current process's
// space into the shared CoW domain, making it visible to all processes
// (cloud9_make_shared).
func (s *S) MakeShared(pid ProcessID, addr uint64) bool {
	p := s.Procs[pid]
	os, _, ok := p.Space.Resolve(addr)
	if !ok {
		return false
	}
	p.Space.Unbind(os.Obj.Base)
	os.Obj.Shared = true
	s.Shared.Bind(os)
	return true
}

// NewSymbol returns a fresh symbolic byte variable named name[i].
func (s *S) NewSymbol(name string) *expr.Expr {
	id := s.NextSym
	s.NextSym++
	return expr.Var(id, name)
}

// NewWaitList allocates a wait queue id (cloud9_get_wlist).
func (s *S) NewWaitList() uint64 {
	id := s.NextWlist
	s.NextWlist++
	s.WaitLists[id] = nil
	return id
}

// Sleep parks thread tid on wait list wl (cloud9_thread_sleep).
func (s *S) Sleep(tid ThreadID, wl uint64) {
	t := s.Threads[tid]
	t.Status = ThreadSleeping
	t.WaitList = wl
	s.WaitLists[wl] = append(s.WaitLists[wl], tid)
}

// Notify wakes one or all threads from wl (cloud9_thread_notify). It
// returns the woken thread ids.
func (s *S) Notify(wl uint64, all bool) []ThreadID {
	q := s.WaitLists[wl]
	if len(q) == 0 {
		return nil
	}
	var woken []ThreadID
	n := 1
	if all {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		tid := q[i]
		t := s.Threads[tid]
		if t != nil && t.Status == ThreadSleeping {
			t.Status = ThreadRunnable
			t.WaitList = 0
			woken = append(woken, tid)
		}
	}
	s.WaitLists[wl] = append([]ThreadID(nil), q[n:]...)
	return woken
}

// Runnable returns the ids of runnable threads in deterministic
// (ascending) order.
func (s *S) Runnable() []ThreadID {
	var out []ThreadID
	for id := ThreadID(1); id < s.NextTID; id++ {
		if t, ok := s.Threads[id]; ok && t.Status == ThreadRunnable {
			out = append(out, id)
		}
	}
	return out
}

// LiveThreads returns the number of non-terminated threads.
func (s *S) LiveThreads() int {
	n := 0
	for _, t := range s.Threads {
		if t.Status != ThreadTerminated {
			n++
		}
	}
	return n
}

// CreateThread starts fn as a new thread in process pid
// (cloud9_thread_create).
func (s *S) CreateThread(pid ProcessID, fn *cvm.Func, args []*expr.Expr) (ThreadID, error) {
	t := &Thread{ID: s.NextTID, Proc: pid, Status: ThreadRunnable}
	s.NextTID++
	t.JoinWlist = s.NewWaitList()
	s.Threads[t.ID] = t
	if err := s.PushFrame(t, fn, args, -1); err != nil {
		delete(s.Threads, t.ID)
		return 0, err
	}
	return t.ID, nil
}

// TerminateThread marks t terminated, unwinds its stack, and wakes any
// threads sleeping on its join wait list.
func (s *S) TerminateThread(tid ThreadID, result *expr.Expr) {
	t := s.Threads[tid]
	for len(t.Stack) > 0 {
		s.PopFrame(t)
	}
	t.Status = ThreadTerminated
	t.Result = result
	if t.JoinWlist != 0 {
		s.Notify(t.JoinWlist, true)
	}
}

// ForkProcess duplicates the current process (cloud9_process_fork):
// the child gets a CoW clone of the parent's address space and a new
// thread cloned from the calling thread.
func (s *S) ForkProcess(callingThread ThreadID) (ProcessID, ThreadID) {
	parent := s.Threads[callingThread].Proc
	child := &Process{
		ID:     s.NextPID,
		Parent: parent,
		Space:  s.Procs[parent].Space.Clone(),
	}
	s.NextPID++
	child.ExitWlist = s.NewWaitList()
	s.Procs[child.ID] = child

	ct := s.Threads[callingThread].Clone()
	ct.ID = s.NextTID
	s.NextTID++
	ct.Proc = child.ID
	ct.Joiners = nil
	ct.JoinWlist = s.NewWaitList()
	s.Threads[ct.ID] = ct
	child.MainThread = ct.ID
	return child.ID, ct.ID
}

// ExitProcess terminates all threads of pid, records the exit code, and
// wakes threads blocked waiting for the process.
func (s *S) ExitProcess(pid ProcessID, code int64) {
	for _, t := range s.Threads {
		if t.Proc == pid && t.Status != ThreadTerminated {
			s.TerminateThread(t.ID, nil)
		}
	}
	p := s.Procs[pid]
	p.Exited = true
	p.ExitCode = code
	if p.ExitWlist != 0 {
		s.Notify(p.ExitWlist, true)
	}
}

// Terminated reports whether the state has stopped.
func (s *S) Terminated() bool { return s.Term != TermNone }

// SetTerminated marks the state stopped.
func (s *S) SetTerminated(kind TerminationKind, msg string) {
	s.Term = kind
	s.TermMsg = msg
}
