package state

import (
	"testing"

	"cloud9/internal/cvm"
	"cloud9/internal/expr"
)

// tinyProgram builds a minimal valid program with one function.
func tinyProgram(t *testing.T) *cvm.Program {
	t.Helper()
	p := cvm.NewProgram("t")
	p.AddGlobal("g", 8, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b := cvm.NewFuncBuilder("main", 0)
	b.Alloca(16)
	r := b.Const(0, expr.W32)
	b.Ret(r)
	p.Funcs["main"] = b.Func()

	b2 := cvm.NewFuncBuilder("worker", 1)
	b2.Ret(0)
	p.Funcs["worker"] = b2.Func()
	if err := p.Validate(nil); err != nil {
		t.Fatal(err)
	}
	return p
}

func newState(t *testing.T) *S {
	t.Helper()
	s, err := New(tinyProgram(t), "main")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateLayout(t *testing.T) {
	s := newState(t)
	if len(s.Procs) != 1 || len(s.Threads) != 1 {
		t.Fatal("initial state should have one process and one thread")
	}
	if s.Globals["g"] == 0 {
		t.Fatal("global not allocated")
	}
	ct := s.CurThread()
	if ct == nil || len(ct.Stack) != 1 || ct.Top().Fn.Name != "main" {
		t.Fatal("entry frame missing")
	}
	if len(ct.Top().SlotObjs) != 1 {
		t.Fatal("stack slot not allocated")
	}
	// Global contents initialized.
	_, os, off, ok := s.Resolve(ct.Proc, s.Globals["g"])
	if !ok || off != 0 {
		t.Fatal("global unresolvable")
	}
	if os.Read(0, expr.W8).ConstVal() != 1 {
		t.Fatal("global init bytes")
	}
}

func TestMissingEntry(t *testing.T) {
	if _, err := New(tinyProgram(t), "nope"); err == nil {
		t.Fatal("missing entry should error")
	}
}

func TestGlobalAddressesIdenticalAcrossStates(t *testing.T) {
	a := newState(t)
	b := newState(t)
	if a.Globals["g"] != b.Globals["g"] {
		t.Fatal("global addresses must be deterministic")
	}
}

func TestForkIsolation(t *testing.T) {
	s := newState(t)
	tid := s.Cur
	addr := s.Threads[tid].Top().SlotObjs[0].Base

	child := s.Fork(2)
	// Write in the child; parent must not see it.
	space, os, off, _ := child.Resolve(child.CurThread().Proc, addr)
	w := space.Writable(os)
	w.Write(off, expr.Const(0xbeef, expr.W16))

	_, pos, poff, _ := s.Resolve(s.CurThread().Proc, addr)
	if got := pos.Read(poff, expr.W16); got.ConstVal() == 0xbeef {
		t.Fatal("fork did not isolate memory")
	}
	// Registers and stacks are independent too.
	child.CurThread().Top().Regs[0] = expr.Const(9, expr.W32)
	if s.CurThread().Top().Regs[0] != nil {
		t.Fatal("register fork leak")
	}
}

func TestForkPreservesCounters(t *testing.T) {
	s := newState(t)
	s.NewSymbol("x")
	s.NewWaitList()
	child := s.Fork(2)
	if child.NextSym != s.NextSym || child.NextWlist != s.NextWlist {
		t.Fatal("counters must fork")
	}
	// Counters advance independently afterwards.
	child.NewSymbol("y")
	if s.NextSym == child.NextSym {
		t.Fatal("counter entanglement")
	}
}

func TestPathChoices(t *testing.T) {
	var p *PathNode
	p = AppendChoice(p, 1)
	p = AppendChoice(p, 0)
	p = AppendChoice(p, 3)
	got := PathChoices(p)
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("choices = %v", got)
	}
	if PathChoices(nil) != nil {
		t.Fatal("nil path should be empty")
	}
	// Persistence: extending does not affect the prefix.
	q := AppendChoice(p, 2)
	if len(PathChoices(p)) != 3 || len(PathChoices(q)) != 4 {
		t.Fatal("path persistence")
	}
}

func TestWaitListSleepNotify(t *testing.T) {
	s := newState(t)
	fn := s.Prog.Func("worker")
	t2, err := s.CreateThread(s.CurThread().Proc, fn, []*expr.Expr{expr.Const(0, expr.W64)})
	if err != nil {
		t.Fatal(err)
	}
	wl := s.NewWaitList()
	s.Sleep(t2, wl)
	if s.Threads[t2].Status != ThreadSleeping {
		t.Fatal("thread should sleep")
	}
	if got := s.Runnable(); len(got) != 1 || got[0] != s.Cur {
		t.Fatalf("runnable = %v", got)
	}
	woken := s.Notify(wl, false)
	if len(woken) != 1 || woken[0] != t2 {
		t.Fatalf("woken = %v", woken)
	}
	if s.Threads[t2].Status != ThreadRunnable {
		t.Fatal("thread should wake")
	}
	// Notify on empty list is a no-op.
	if s.Notify(wl, true) != nil {
		t.Fatal("empty notify should wake nobody")
	}
}

func TestNotifyAll(t *testing.T) {
	s := newState(t)
	fn := s.Prog.Func("worker")
	wl := s.NewWaitList()
	var tids []ThreadID
	for i := 0; i < 3; i++ {
		tid, err := s.CreateThread(s.CurThread().Proc, fn, []*expr.Expr{expr.Const(0, expr.W64)})
		if err != nil {
			t.Fatal(err)
		}
		s.Sleep(tid, wl)
		tids = append(tids, tid)
	}
	woken := s.Notify(wl, true)
	if len(woken) != 3 {
		t.Fatalf("woken = %v", woken)
	}
}

func TestThreadTerminationWakesJoiners(t *testing.T) {
	s := newState(t)
	fn := s.Prog.Func("worker")
	t2, _ := s.CreateThread(s.CurThread().Proc, fn, []*expr.Expr{expr.Const(0, expr.W64)})
	// Main joins t2.
	s.Sleep(s.Cur, s.Threads[t2].JoinWlist)
	s.TerminateThread(t2, expr.Const(7, expr.W32))
	if s.Threads[s.Cur].Status != ThreadRunnable {
		t.Fatal("joiner not woken by termination")
	}
	if s.Threads[t2].Result.ConstVal() != 7 {
		t.Fatal("thread result lost")
	}
}

func TestProcessForkSharesNothingPrivate(t *testing.T) {
	s := newState(t)
	parentProc := s.CurThread().Proc
	pid, ctid := s.ForkProcess(s.Cur)
	if pid == parentProc {
		t.Fatal("fork returned parent pid")
	}
	child := s.Threads[ctid]
	if child.Proc != pid {
		t.Fatal("child thread in wrong process")
	}
	if s.Procs[pid].MainThread != ctid {
		t.Fatal("child main thread")
	}
	// Private write in child's space invisible to parent.
	addr := s.Globals["g"]
	space, os, off, _ := s.Resolve(pid, addr)
	w := space.Writable(os)
	w.Write(off, expr.Const(0xff, expr.W8))
	_, pos, poff, _ := s.Resolve(parentProc, addr)
	if pos.Read(poff, expr.W8).ConstVal() == 0xff {
		t.Fatal("process fork did not CoW the address space")
	}
}

func TestMakeSharedVisibleToAllProcesses(t *testing.T) {
	s := newState(t)
	parent := s.CurThread().Proc
	addr := s.Globals["g"]
	if !s.MakeShared(parent, addr) {
		t.Fatal("make_shared failed")
	}
	pid, _ := s.ForkProcess(s.Cur)
	// Write via child; parent must see it (same shared object).
	space, os, off, ok := s.Resolve(pid, addr)
	if !ok {
		t.Fatal("shared object not visible in child")
	}
	w := space.Writable(os)
	w.Write(off, expr.Const(0x55, expr.W8))
	_, pos, poff, _ := s.Resolve(parent, addr)
	if pos.Read(poff, expr.W8).ConstVal() != 0x55 {
		t.Fatal("shared write not visible to parent")
	}
}

func TestExitProcessWakesWaiters(t *testing.T) {
	s := newState(t)
	pid, _ := s.ForkProcess(s.Cur)
	s.Sleep(s.Cur, s.Procs[pid].ExitWlist)
	s.ExitProcess(pid, 42)
	if s.Threads[s.Cur].Status != ThreadRunnable {
		t.Fatal("waiter not woken on exit")
	}
	if !s.Procs[pid].Exited || s.Procs[pid].ExitCode != 42 {
		t.Fatal("exit bookkeeping")
	}
}

func TestLiveThreadsAndTermination(t *testing.T) {
	s := newState(t)
	if s.LiveThreads() != 1 {
		t.Fatal("one live thread expected")
	}
	s.TerminateThread(s.Cur, nil)
	if s.LiveThreads() != 0 {
		t.Fatal("no live threads expected")
	}
	if s.Terminated() {
		t.Fatal("state termination is explicit")
	}
	s.SetTerminated(TermExit, "done")
	if !s.Terminated() || s.Term != TermExit {
		t.Fatal("SetTerminated")
	}
}

func TestAuxClonerDeepCopies(t *testing.T) {
	s := newState(t)
	s.Aux["plain"] = 42
	s.Aux["cloned"] = &testAux{v: 1}
	child := s.Fork(2)
	child.Aux["cloned"].(*testAux).v = 99
	if s.Aux["cloned"].(*testAux).v != 1 {
		t.Fatal("AuxCloner value not deep-copied")
	}
	if child.Aux["plain"] != 42 {
		t.Fatal("plain aux value lost")
	}
}

type testAux struct{ v int }

func (a *testAux) CloneAux() interface{} { return &testAux{v: a.v} }

func TestPushPopFrameReleasesSlots(t *testing.T) {
	s := newState(t)
	th := s.CurThread()
	fn := s.Prog.Func("main")
	if err := s.PushFrame(th, fn, nil, -1); err != nil {
		t.Fatal(err)
	}
	addr := th.Top().SlotObjs[0].Base
	if _, _, _, ok := s.Resolve(th.Proc, addr); !ok {
		t.Fatal("slot should be mapped")
	}
	s.PopFrame(th)
	if _, _, _, ok := s.Resolve(th.Proc, addr); ok {
		t.Fatal("slot should be unmapped after pop")
	}
}
