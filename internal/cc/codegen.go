package cc

import (
	"fmt"

	"cloud9/internal/cvm"
	"cloud9/internal/expr"
)

// Signature describes a callable's type for compilation purposes.
type Signature struct {
	Ret      *Type
	Params   []*Type
	Variadic bool
}

// Options configures compilation.
type Options struct {
	// Externs maps names of runtime-provided functions (the POSIX model
	// and engine intrinsics) to their signatures.
	Externs map[string]*Signature
	// CoverageStartLine, when positive, excludes instructions attached to
	// earlier source lines from coverage accounting (used to ignore the
	// model prelude when measuring target coverage).
	CoverageStartLine int
}

// Compile translates the C-subset source into a CVM program.
func Compile(name, src string, opts Options) (prog *cvm.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lexError); ok {
				err = fmt.Errorf("cc: %s: %w", name, le)
				return
			}
			panic(r)
		}
	}()
	toks := lex(src)
	p := &parser{toks: toks}
	u := p.parseUnit()

	g := &gen{
		prog:    cvm.NewProgram(name),
		externs: opts.Externs,
		sigs:    map[string]*Signature{},
		globals: map[string]*Type{},
	}
	// Collect signatures (including prototypes) and globals first so
	// that forward references resolve.
	for _, fd := range u.funcs {
		sig := &Signature{Ret: fd.ret}
		for _, pa := range fd.params {
			sig.Params = append(sig.Params, pa.t)
		}
		g.sigs[fd.name] = sig
	}
	for _, gd := range u.globals {
		g.globals[gd.name] = gd.t
		init := make([]byte, 0, gd.t.Size())
		if gd.hasStr {
			init = append(init, gd.strInit...)
		} else if gd.init != nil {
			v, ok := g.evalConst(gd.init)
			if !ok {
				panic(errf(gd.line, "global initializer must be constant"))
			}
			init = encodeLE(v, gd.t.Size())
		}
		g.prog.AddGlobal(gd.name, gd.t.Size(), init)
	}
	for _, fd := range u.funcs {
		if fd.body == nil {
			continue // prototype only
		}
		g.genFunc(fd)
	}
	// Strip coverage attribution from prelude lines and track the max
	// line for coverage bit-vector sizing.
	for _, f := range g.prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if opts.CoverageStartLine > 0 && b.Instrs[i].Line < opts.CoverageStartLine {
					b.Instrs[i].Line = 0
					continue
				}
				if b.Instrs[i].Line > g.prog.MaxLine {
					g.prog.MaxLine = b.Instrs[i].Line
				}
			}
		}
	}
	if verr := g.prog.Validate(func(s string) bool {
		_, ok := g.externs[s]
		return ok
	}); verr != nil {
		return nil, fmt.Errorf("cc: %s: generated invalid IR: %w", name, verr)
	}
	return g.prog, nil
}

func encodeLE(v int64, size int64) []byte {
	out := make([]byte, size)
	for i := int64(0); i < size && i < 8; i++ {
		out[i] = byte(v >> (8 * i))
	}
	return out
}

// gen holds program-wide codegen state.
type gen struct {
	prog    *cvm.Program
	externs map[string]*Signature
	sigs    map[string]*Signature
	globals map[string]*Type
	strN    int
}

// value is an rvalue held in a register.
type value struct {
	reg int
	t   *Type
}

// lval is an addressable location.
type lval struct {
	addr int // register holding the address
	t    *Type
}

// fgen holds per-function codegen state.
type fgen struct {
	*gen
	fb     *cvm.FuncBuilder
	fd     *funcDecl
	scopes []map[string]localVar
	breaks []*cvm.Block
	conts  []*cvm.Block
}

type localVar struct {
	offset int64
	t      *Type
}

func (g *gen) genFunc(fd *funcDecl) {
	fb := cvm.NewFuncBuilder(fd.name, len(fd.params))
	f := &fgen{gen: g, fb: fb, fd: fd}
	f.pushScope()
	// Spill parameters to stack slots so they are addressable like any
	// other local.
	fb.SetLine(fd.line)
	for i, pa := range fd.params {
		off := fb.Alloca(pa.t.Size())
		f.scopes[0][pa.name] = localVar{offset: off, t: pa.t}
		addr := fb.FrameAddr(off)
		fb.Store(addr, i, pa.t.Width())
	}
	f.genBlockStmt(fd.body)
	if !fb.Terminated() {
		if fd.ret.Kind == KVoid {
			fb.Ret(-1)
		} else {
			z := fb.Const(0, fd.ret.Width())
			fb.Ret(z)
		}
	}
	g.prog.Funcs[fd.name] = fb.Func()
}

func (f *fgen) pushScope() { f.scopes = append(f.scopes, map[string]localVar{}) }
func (f *fgen) popScope()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *fgen) lookup(name string) (localVar, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if lv, ok := f.scopes[i][name]; ok {
			return lv, true
		}
	}
	return localVar{}, false
}

// ---- Statements ----

func (f *fgen) genStmt(s stmtNode) {
	f.fb.SetLine(s.nodeLine())
	switch st := s.(type) {
	case *blockStmt:
		f.genBlockStmt(st)
	case *declStmt:
		off := f.fb.Alloca(st.t.Size())
		f.scopes[len(f.scopes)-1][st.name] = localVar{offset: off, t: st.t}
		if st.init != nil {
			v := f.genExpr(st.init)
			cv := f.convert(v, st.t.Decay())
			addr := f.fb.FrameAddr(off)
			f.fb.Store(addr, cv.reg, st.t.Width())
		}
	case *exprStmt:
		f.genExprForEffect(st.x)
	case *ifStmt:
		c := f.genCond(st.c)
		thenB := f.fb.NewBlock()
		elseB := f.fb.NewBlock()
		endB := f.fb.NewBlock()
		f.fb.CondBr(c, thenB, elseB)
		f.fb.SetBlock(thenB)
		f.genStmt(st.then)
		if !f.fb.Terminated() {
			f.fb.Br(endB)
		}
		f.fb.SetBlock(elseB)
		if st.els != nil {
			f.genStmt(st.els)
		}
		if !f.fb.Terminated() {
			f.fb.Br(endB)
		}
		f.fb.SetBlock(endB)
	case *whileStmt:
		condB := f.fb.NewBlock()
		bodyB := f.fb.NewBlock()
		endB := f.fb.NewBlock()
		if st.doWhile {
			f.fb.Br(bodyB)
		} else {
			f.fb.Br(condB)
		}
		f.fb.SetBlock(condB)
		f.fb.SetLine(st.line)
		c := f.genCond(st.c)
		f.fb.CondBr(c, bodyB, endB)
		f.fb.SetBlock(bodyB)
		f.breaks = append(f.breaks, endB)
		f.conts = append(f.conts, condB)
		f.genStmt(st.body)
		f.breaks = f.breaks[:len(f.breaks)-1]
		f.conts = f.conts[:len(f.conts)-1]
		if !f.fb.Terminated() {
			f.fb.Br(condB)
		}
		f.fb.SetBlock(endB)
	case *forStmt:
		f.pushScope()
		if st.init != nil {
			f.genStmt(st.init)
		}
		condB := f.fb.NewBlock()
		bodyB := f.fb.NewBlock()
		postB := f.fb.NewBlock()
		endB := f.fb.NewBlock()
		f.fb.Br(condB)
		f.fb.SetBlock(condB)
		if st.c != nil {
			f.fb.SetLine(st.line)
			c := f.genCond(st.c)
			f.fb.CondBr(c, bodyB, endB)
		} else {
			f.fb.Br(bodyB)
		}
		f.fb.SetBlock(bodyB)
		f.breaks = append(f.breaks, endB)
		f.conts = append(f.conts, postB)
		f.genStmt(st.body)
		f.breaks = f.breaks[:len(f.breaks)-1]
		f.conts = f.conts[:len(f.conts)-1]
		if !f.fb.Terminated() {
			f.fb.Br(postB)
		}
		f.fb.SetBlock(postB)
		if st.post != nil {
			f.genExprForEffect(st.post)
		}
		f.fb.Br(condB)
		f.fb.SetBlock(endB)
		f.popScope()
	case *switchStmt:
		f.genSwitch(st)
	case *breakStmt:
		if len(f.breaks) == 0 {
			panic(errf(st.line, "break outside loop/switch"))
		}
		f.fb.Br(f.breaks[len(f.breaks)-1])
		f.fb.SetBlock(f.fb.NewBlock()) // unreachable continuation
	case *continueStmt:
		if len(f.conts) == 0 {
			panic(errf(st.line, "continue outside loop"))
		}
		f.fb.Br(f.conts[len(f.conts)-1])
		f.fb.SetBlock(f.fb.NewBlock())
	case *returnStmt:
		if st.x == nil {
			f.fb.Ret(-1)
		} else {
			v := f.genExpr(st.x)
			cv := f.convert(v, f.fd.ret)
			f.fb.Ret(cv.reg)
		}
		f.fb.SetBlock(f.fb.NewBlock())
	default:
		panic(errf(s.nodeLine(), "unsupported statement %T", s))
	}
}

func (f *fgen) genBlockStmt(b *blockStmt) {
	f.pushScope()
	for _, s := range b.stmts {
		f.genStmt(s)
	}
	f.popScope()
}

func (f *fgen) genSwitch(st *switchStmt) {
	x := f.genExpr(st.x)
	endB := f.fb.NewBlock()

	// One body block per case, in declaration order (for fallthrough).
	bodyBlocks := make([]*cvm.Block, len(st.cases))
	for i := range st.cases {
		bodyBlocks[i] = f.fb.NewBlock()
	}
	// Dispatch chain.
	defIdx := -1
	for i, sc := range st.cases {
		if sc.isDef {
			defIdx = i
			continue
		}
		cv := f.fb.Const(sc.val, x.t.Width())
		c := f.fb.Bin(cvm.OpEq, x.reg, cv, x.t.Width())
		nextB := f.fb.NewBlock()
		f.fb.CondBr(c, bodyBlocks[i], nextB)
		f.fb.SetBlock(nextB)
	}
	if defIdx >= 0 {
		f.fb.Br(bodyBlocks[defIdx])
	} else {
		f.fb.Br(endB)
	}
	// Bodies with fallthrough.
	f.breaks = append(f.breaks, endB)
	for i, sc := range st.cases {
		f.fb.SetBlock(bodyBlocks[i])
		f.fb.SetLine(sc.line)
		for _, s := range sc.body {
			f.genStmt(s)
		}
		if !f.fb.Terminated() {
			if i+1 < len(st.cases) {
				f.fb.Br(bodyBlocks[i+1])
			} else {
				f.fb.Br(endB)
			}
		}
	}
	f.breaks = f.breaks[:len(f.breaks)-1]
	f.fb.SetBlock(endB)
}

// ---- Expressions ----

// genExprForEffect evaluates x, discarding any value (so void calls are
// legal here).
func (f *fgen) genExprForEffect(x exprNode) {
	if c, ok := x.(*call); ok {
		f.genCall(c, true)
		return
	}
	f.genExpr(x)
}

// genExpr produces an rvalue.
func (f *fgen) genExpr(x exprNode) value {
	f.fb.SetLine(x.nodeLine())
	switch e := x.(type) {
	case *numLit:
		t := TypeInt
		if e.val > 0x7fffffff || e.val < -0x80000000 {
			t = TypeLong
		}
		return value{f.fb.Const(e.val, t.Width()), t}
	case *strLit:
		name := f.internString(e.val)
		return value{f.fb.GlobalAddr(name), Ptr(TypeChar)}
	case *identRef:
		lv := f.genAddrOfIdent(e)
		if lv.t.Kind == KArray {
			return value{lv.addr, Ptr(lv.t.Elem)}
		}
		return value{f.fb.Load(lv.addr, lv.t.Width()), lv.t}
	case *unary:
		return f.genUnary(e)
	case *binary:
		return f.genBinary(e)
	case *assign:
		return f.genAssign(e)
	case *cond:
		return f.genTernary(e)
	case *index:
		lv := f.genLValue(e)
		if lv.t.Kind == KArray {
			return value{lv.addr, Ptr(lv.t.Elem)}
		}
		return value{f.fb.Load(lv.addr, lv.t.Width()), lv.t}
	case *call:
		return f.genCall(e, false)
	case *cast:
		v := f.genExpr(e.x)
		return f.convert(v, e.to)
	case *sizeofExpr:
		return value{f.fb.Const(e.t.Size(), expr.W64), TypeULong}
	case *valueExpr:
		return e.v
	default:
		panic(errf(x.nodeLine(), "unsupported expression %T", x))
	}
}

// genLValue produces an addressable location.
func (f *fgen) genLValue(x exprNode) lval {
	f.fb.SetLine(x.nodeLine())
	switch e := x.(type) {
	case *identRef:
		return f.genAddrOfIdent(e)
	case *unary:
		if e.op == "*" {
			v := f.genExpr(e.x)
			if !v.t.IsPointerish() {
				panic(errf(e.line, "dereference of non-pointer %s", v.t))
			}
			return lval{v.reg, v.t.Decay().Elem}
		}
	case *index:
		arr := f.genExpr(e.arr)
		if !arr.t.IsPointerish() {
			panic(errf(e.line, "indexing non-pointer %s", arr.t))
		}
		pt := arr.t.Decay()
		idx := f.genExpr(e.idx)
		addr := f.pointerAdd(arr.reg, pt, idx, e.line)
		return lval{addr, pt.Elem}
	}
	panic(errf(x.nodeLine(), "expression is not an lvalue"))
}

func (f *fgen) genAddrOfIdent(e *identRef) lval {
	if lv, ok := f.lookup(e.name); ok {
		return lval{f.fb.FrameAddr(lv.offset), lv.t}
	}
	if t, ok := f.globals[e.name]; ok {
		return lval{f.fb.GlobalAddr(e.name), t}
	}
	panic(errf(e.line, "undefined identifier %q", e.name))
}

// pointerAdd computes ptr + idx*sizeof(elem), returning the address reg.
func (f *fgen) pointerAdd(ptrReg int, pt *Type, idx value, line int) int {
	if !idx.t.IsInteger() {
		panic(errf(line, "pointer offset must be integer, got %s", idx.t))
	}
	wide := f.widen(idx, expr.W64)
	sz := pt.Elem.Size()
	if sz != 1 {
		szReg := f.fb.Const(sz, expr.W64)
		wide = f.fb.Bin(cvm.OpMul, wide, szReg, expr.W64)
	}
	return f.fb.Bin(cvm.OpAdd, ptrReg, wide, expr.W64)
}

// widen converts v's register to width w honoring signedness.
func (f *fgen) widen(v value, w expr.Width) int {
	if v.t.Width() == w {
		return v.reg
	}
	if v.t.Width() > w {
		return f.fb.Conv(cvm.OpTrunc, v.reg, w)
	}
	if v.t.IsInteger() && v.t.Signed {
		return f.fb.Conv(cvm.OpSExt, v.reg, w)
	}
	return f.fb.Conv(cvm.OpZExt, v.reg, w)
}

// convert adapts v to type "to" (width change only; pointer/integer
// conversions are free-form as in C).
func (f *fgen) convert(v value, to *Type) value {
	if to.Kind == KVoid {
		return value{v.reg, TypeVoid}
	}
	return value{f.widen(v, to.Width()), to}
}

func (f *fgen) internString(s string) string {
	name := fmt.Sprintf(".str%d", f.strN)
	f.strN++
	data := append([]byte(s), 0)
	f.prog.AddGlobal(name, int64(len(data)), data)
	f.globals[name] = ArrayOf(TypeChar, int64(len(data)))
	return name
}

// genCond produces a W1 register for branch conditions, with
// short-circuit lowering for && and ||.
func (f *fgen) genCond(x exprNode) int {
	f.fb.SetLine(x.nodeLine())
	switch e := x.(type) {
	case *binary:
		switch e.op {
		case "&&":
			// l && r: if !l -> false
			res := f.fb.Alloca(1)
			rBlk := f.fb.NewBlock()
			fBlk := f.fb.NewBlock()
			end := f.fb.NewBlock()
			l := f.genCond(e.l)
			f.fb.CondBr(l, rBlk, fBlk)
			f.fb.SetBlock(rBlk)
			r := f.genCond(e.r)
			r8 := f.fb.Conv(cvm.OpZExt, r, expr.W8)
			a1 := f.fb.FrameAddr(res)
			f.fb.Store(a1, r8, expr.W8)
			f.fb.Br(end)
			f.fb.SetBlock(fBlk)
			z := f.fb.Const(0, expr.W8)
			a2 := f.fb.FrameAddr(res)
			f.fb.Store(a2, z, expr.W8)
			f.fb.Br(end)
			f.fb.SetBlock(end)
			a3 := f.fb.FrameAddr(res)
			v := f.fb.Load(a3, expr.W8)
			zero := f.fb.Const(0, expr.W8)
			return f.fb.Bin(cvm.OpNe, v, zero, expr.W8)
		case "||":
			res := f.fb.Alloca(1)
			rBlk := f.fb.NewBlock()
			tBlk := f.fb.NewBlock()
			end := f.fb.NewBlock()
			l := f.genCond(e.l)
			f.fb.CondBr(l, tBlk, rBlk)
			f.fb.SetBlock(tBlk)
			one := f.fb.Const(1, expr.W8)
			a1 := f.fb.FrameAddr(res)
			f.fb.Store(a1, one, expr.W8)
			f.fb.Br(end)
			f.fb.SetBlock(rBlk)
			r := f.genCond(e.r)
			r8 := f.fb.Conv(cvm.OpZExt, r, expr.W8)
			a2 := f.fb.FrameAddr(res)
			f.fb.Store(a2, r8, expr.W8)
			f.fb.Br(end)
			f.fb.SetBlock(end)
			a3 := f.fb.FrameAddr(res)
			v := f.fb.Load(a3, expr.W8)
			zero := f.fb.Const(0, expr.W8)
			return f.fb.Bin(cvm.OpNe, v, zero, expr.W8)
		case "==", "!=", "<", "<=", ">", ">=":
			l := f.genExpr(e.l)
			r := f.genExpr(e.r)
			return f.genCompare(e.op, l, r, e.line)
		}
	case *unary:
		if e.op == "!" {
			c := f.genCond(e.x)
			one := f.fb.Const(1, expr.W1)
			return f.fb.Bin(cvm.OpXor, c, one, expr.W1)
		}
	}
	v := f.genExpr(x)
	z := f.fb.Const(0, v.t.Width())
	return f.fb.Bin(cvm.OpNe, v.reg, z, v.t.Width())
}

// genCompare emits a comparison yielding a W1 register.
func (f *fgen) genCompare(op string, l, r value, line int) int {
	var ct *Type
	if l.t.IsPointerish() || r.t.IsPointerish() {
		ct = TypeULong
	} else {
		ct = usualArith(l.t, r.t)
	}
	lr := f.widen(l, ct.Width())
	rr := f.widen(r, ct.Width())
	w := ct.Width()
	signed := ct.IsInteger() && ct.Signed
	switch op {
	case "==":
		return f.fb.Bin(cvm.OpEq, lr, rr, w)
	case "!=":
		return f.fb.Bin(cvm.OpNe, lr, rr, w)
	case "<":
		if signed {
			return f.fb.Bin(cvm.OpSlt, lr, rr, w)
		}
		return f.fb.Bin(cvm.OpUlt, lr, rr, w)
	case "<=":
		if signed {
			return f.fb.Bin(cvm.OpSle, lr, rr, w)
		}
		return f.fb.Bin(cvm.OpUle, lr, rr, w)
	case ">":
		if signed {
			return f.fb.Bin(cvm.OpSlt, rr, lr, w)
		}
		return f.fb.Bin(cvm.OpUlt, rr, lr, w)
	case ">=":
		if signed {
			return f.fb.Bin(cvm.OpSle, rr, lr, w)
		}
		return f.fb.Bin(cvm.OpUle, rr, lr, w)
	}
	panic(errf(line, "bad comparison %q", op))
}

func (f *fgen) genUnary(e *unary) value {
	switch e.op {
	case "-":
		v := f.genExpr(e.x)
		t := usualArith(v.t, TypeInt)
		r := f.widen(v, t.Width())
		z := f.fb.Const(0, t.Width())
		return value{f.fb.Bin(cvm.OpSub, z, r, t.Width()), t}
	case "~":
		v := f.genExpr(e.x)
		t := usualArith(v.t, TypeInt)
		r := f.widen(v, t.Width())
		m := f.fb.Const(-1, t.Width())
		return value{f.fb.Bin(cvm.OpXor, r, m, t.Width()), t}
	case "!":
		c := f.genCond(e.x)
		one := f.fb.Const(1, expr.W1)
		inv := f.fb.Bin(cvm.OpXor, c, one, expr.W1)
		return value{f.fb.Conv(cvm.OpZExt, inv, expr.W32), TypeInt}
	case "*":
		v := f.genExpr(e.x)
		if !v.t.IsPointerish() {
			panic(errf(e.line, "dereference of non-pointer %s", v.t))
		}
		et := v.t.Decay().Elem
		if et.Kind == KArray {
			return value{v.reg, Ptr(et.Elem)}
		}
		return value{f.fb.Load(v.reg, et.Width()), et}
	case "&":
		lv := f.genLValue(e.x)
		return value{lv.addr, Ptr(lv.t)}
	case "++", "--", "p++", "p--":
		return f.genIncDec(e)
	}
	panic(errf(e.line, "unsupported unary %q", e.op))
}

func (f *fgen) genIncDec(e *unary) value {
	lv := f.genLValue(e.x)
	old := f.fb.Load(lv.addr, lv.t.Width())
	var delta int64 = 1
	if lv.t.Kind == KPtr {
		delta = lv.t.Elem.Size()
	}
	d := f.fb.Const(delta, lv.t.Width())
	op := cvm.OpAdd
	if e.op == "--" || e.op == "p--" {
		op = cvm.OpSub
	}
	nw := f.fb.Bin(op, old, d, lv.t.Width())
	f.fb.Store(lv.addr, nw, lv.t.Width())
	if e.op == "++" || e.op == "--" {
		return value{nw, lv.t}
	}
	return value{old, lv.t}
}

var binOpcode = map[string]cvm.Opcode{
	"+": cvm.OpAdd, "-": cvm.OpSub, "*": cvm.OpMul,
	"&": cvm.OpAnd, "|": cvm.OpOr, "^": cvm.OpXor,
	"<<": cvm.OpShl,
}

func (f *fgen) genBinary(e *binary) value {
	switch e.op {
	case "&&", "||":
		c := f.genCond(e)
		return value{f.fb.Conv(cvm.OpZExt, c, expr.W32), TypeInt}
	case "==", "!=", "<", "<=", ">", ">=":
		l := f.genExpr(e.l)
		r := f.genExpr(e.r)
		c := f.genCompare(e.op, l, r, e.line)
		return value{f.fb.Conv(cvm.OpZExt, c, expr.W32), TypeInt}
	case ",":
		f.genExprForEffect(e.l)
		return f.genExpr(e.r)
	}
	l := f.genExpr(e.l)
	r := f.genExpr(e.r)

	// Pointer arithmetic.
	if e.op == "+" && l.t.IsPointerish() {
		pt := l.t.Decay()
		return value{f.pointerAdd(l.reg, pt, r, e.line), pt}
	}
	if e.op == "+" && r.t.IsPointerish() {
		pt := r.t.Decay()
		return value{f.pointerAdd(r.reg, pt, l, e.line), pt}
	}
	if e.op == "-" && l.t.IsPointerish() {
		pt := l.t.Decay()
		if r.t.IsPointerish() {
			diff := f.fb.Bin(cvm.OpSub, l.reg, r.reg, expr.W64)
			if sz := pt.Elem.Size(); sz != 1 {
				szr := f.fb.Const(sz, expr.W64)
				diff = f.fb.Bin(cvm.OpSDiv, diff, szr, expr.W64)
			}
			return value{diff, TypeLong}
		}
		// p - i: scaled subtract.
		wide := f.widen(r, expr.W64)
		if sz := pt.Elem.Size(); sz != 1 {
			szr := f.fb.Const(sz, expr.W64)
			wide = f.fb.Bin(cvm.OpMul, wide, szr, expr.W64)
		}
		return value{f.fb.Bin(cvm.OpSub, l.reg, wide, expr.W64), pt}
	}

	t := usualArith(l.t, r.t)
	lr := f.widen(l, t.Width())
	rr := f.widen(r, t.Width())
	w := t.Width()
	switch e.op {
	case "/":
		if t.Signed {
			return value{f.fb.Bin(cvm.OpSDiv, lr, rr, w), t}
		}
		return value{f.fb.Bin(cvm.OpUDiv, lr, rr, w), t}
	case "%":
		if t.Signed {
			return value{f.fb.Bin(cvm.OpSRem, lr, rr, w), t}
		}
		return value{f.fb.Bin(cvm.OpURem, lr, rr, w), t}
	case ">>":
		// Shift result takes the left operand's (promoted) type.
		lt := usualArith(l.t, TypeInt)
		lw := f.widen(l, lt.Width())
		rw := f.widen(r, lt.Width())
		if lt.Signed {
			return value{f.fb.Bin(cvm.OpAShr, lw, rw, lt.Width()), lt}
		}
		return value{f.fb.Bin(cvm.OpLShr, lw, rw, lt.Width()), lt}
	case "<<":
		lt := usualArith(l.t, TypeInt)
		lw := f.widen(l, lt.Width())
		rw := f.widen(r, lt.Width())
		return value{f.fb.Bin(cvm.OpShl, lw, rw, lt.Width()), lt}
	}
	op, ok := binOpcode[e.op]
	if !ok {
		panic(errf(e.line, "unsupported binary %q", e.op))
	}
	return value{f.fb.Bin(op, lr, rr, w), t}
}

func (f *fgen) genAssign(e *assign) value {
	lv := f.genLValue(e.l)
	var v value
	if e.op == "=" {
		v = f.genExpr(e.r)
	} else {
		// Compound: load, apply, store.
		cur := value{f.fb.Load(lv.addr, lv.t.Width()), lv.t}
		binOp := e.op[:len(e.op)-1]
		synth := &binary{base: base{e.line}, op: binOp, l: wrapValue(cur, e.line), r: e.r}
		v = f.genBinary(synth)
	}
	cv := f.convert(v, lv.t.Decay())
	f.fb.Store(lv.addr, cv.reg, lv.t.Width())
	return value{cv.reg, lv.t}
}

// valueExpr lets an already-evaluated value participate in AST-driven
// codegen (used by compound assignment).
type valueExpr struct {
	base
	v value
}

func wrapValue(v value, line int) exprNode { return &valueExpr{base{line}, v} }

func (f *fgen) genTernary(e *cond) value {
	c := f.genCond(e.c)
	// Result type: evaluate both arms into a shared frame slot.
	thenB := f.fb.NewBlock()
	elseB := f.fb.NewBlock()
	endB := f.fb.NewBlock()
	slot := f.fb.Alloca(8)
	f.fb.CondBr(c, thenB, elseB)

	f.fb.SetBlock(thenB)
	av := f.genExpr(e.a)
	at := av.t.Decay()
	a64 := f.widen(av, expr.W64)
	addr1 := f.fb.FrameAddr(slot)
	f.fb.Store(addr1, a64, expr.W64)
	f.fb.Br(endB)

	f.fb.SetBlock(elseB)
	bv := f.genExpr(e.b)
	b64 := f.widen(bv, expr.W64)
	addr2 := f.fb.FrameAddr(slot)
	f.fb.Store(addr2, b64, expr.W64)
	f.fb.Br(endB)

	f.fb.SetBlock(endB)
	addr3 := f.fb.FrameAddr(slot)
	raw := f.fb.Load(addr3, expr.W64)
	res := value{raw, TypeLong}
	// Use the then-arm's type as the result type (both arms should
	// agree in well-formed programs).
	return f.convert(res, at)
}

func (f *fgen) genCall(e *call, discard bool) value {
	sig := f.sigs[e.name]
	if sig == nil {
		sig = f.externs[e.name]
	}
	if sig == nil {
		panic(errf(e.line, "call to undeclared function %q", e.name))
	}
	if len(e.args) < len(sig.Params) || (len(e.args) > len(sig.Params) && !sig.Variadic) {
		panic(errf(e.line, "call to %q with %d args, want %d", e.name, len(e.args), len(sig.Params)))
	}
	regs := make([]int, 0, len(e.args))
	for i, a := range e.args {
		av := f.genExpr(a)
		if i < len(sig.Params) {
			cv := f.convert(av, sig.Params[i].Decay())
			regs = append(regs, cv.reg)
		} else {
			// Variadic extras: promote to at least int width.
			t := av.t.Decay()
			if t.IsInteger() && t.W < expr.W32 {
				regs = append(regs, f.widen(av, expr.W32))
			} else {
				regs = append(regs, av.reg)
			}
		}
	}
	f.fb.SetLine(e.line)
	if discard || sig.Ret.Kind == KVoid {
		f.fb.CallVoid(e.name, regs...)
		return value{0, TypeVoid}
	}
	r := f.fb.Call(e.name, regs...)
	return value{r, sig.Ret}
}

// evalConst folds a constant expression at compile time.
func (g *gen) evalConst(x exprNode) (int64, bool) {
	switch e := x.(type) {
	case *numLit:
		return e.val, true
	case *sizeofExpr:
		return e.t.Size(), true
	case *unary:
		v, ok := g.evalConst(e.x)
		if !ok {
			return 0, false
		}
		switch e.op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *binary:
		l, ok1 := g.evalConst(e.l)
		r, ok2 := g.evalConst(e.r)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r != 0 {
				return l / r, true
			}
		case "%":
			if r != 0 {
				return l % r, true
			}
		case "<<":
			return l << uint(r), true
		case ">>":
			return l >> uint(r), true
		case "&":
			return l & r, true
		case "|":
			return l | r, true
		case "^":
			return l ^ r, true
		}
	case *cast:
		return g.evalConst(e.x)
	}
	return 0, false
}
