package cc

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct   // operators and punctuation
	tokKeyword // reserved words
)

type token struct {
	kind tokKind
	text string
	val  int64 // tokNumber / tokChar
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"void": true, "char": true, "int": true, "long": true, "unsigned": true,
	"signed": true, "if": true, "else": true, "while": true, "for": true,
	"do": true, "return": true, "break": true, "continue": true,
	"switch": true, "case": true, "default": true, "sizeof": true,
	"extern": true, "static": true, "const": true, "struct": true,
	"goto": true,
}

// multi-char punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

// lexError is reported via panic within the lexer/parser and recovered at
// the Compile boundary.
type lexError struct {
	line int
	msg  string
}

func (e lexError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func errf(line int, format string, args ...interface{}) lexError {
	return lexError{line: line, msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments (// and /* */) and preprocessor-style lines
// beginning with '#' are skipped.
func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // ignore preprocessor-ish lines
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				panic(errf(line, "unterminated block comment"))
			}
			i += 2
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentCont(src[j]) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := int64(10)
			if c == '0' && j+1 < n && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			start := j
			for j < n && isNumCont(src[j], base) {
				j++
			}
			text := src[start:j]
			var v int64
			for _, ch := range text {
				v = v*base + int64(hexVal(byte(ch)))
			}
			// swallow integer suffixes
			for j < n && (src[j] == 'u' || src[j] == 'U' || src[j] == 'l' || src[j] == 'L') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], val: v, line: line})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				ch, adv := unescape(src, j, line)
				sb.WriteByte(ch)
				j += adv
			}
			if j >= n {
				panic(errf(line, "unterminated string literal"))
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
			i = j + 1
		case c == '\'':
			j := i + 1
			if j >= n {
				panic(errf(line, "unterminated char literal"))
			}
			ch, adv := unescape(src, j, line)
			j += adv
			if j >= n || src[j] != '\'' {
				panic(errf(line, "unterminated char literal"))
			}
			toks = append(toks, token{kind: tokChar, text: string(ch), val: int64(ch), line: line})
			i = j + 1
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				panic(errf(line, "unexpected character %q", c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isNumCont(c byte, base int64) bool {
	if base == 16 {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return c >= '0' && c <= '9'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}

// unescape decodes one (possibly escaped) character at src[j]; returns the
// byte and how many input bytes were consumed.
func unescape(src string, j int, line int) (byte, int) {
	if src[j] != '\\' {
		return src[j], 1
	}
	if j+1 >= len(src) {
		panic(errf(line, "dangling escape"))
	}
	switch src[j+1] {
	case 'n':
		return '\n', 2
	case 't':
		return '\t', 2
	case 'r':
		return '\r', 2
	case '0':
		return 0, 2
	case '\\':
		return '\\', 2
	case '\'':
		return '\'', 2
	case '"':
		return '"', 2
	case 'x':
		v := 0
		k := j + 2
		for k < len(src) && k < j+4 && isNumCont(src[k], 16) {
			v = v*16 + hexVal(src[k])
			k++
		}
		return byte(v), k - j
	default:
		panic(errf(line, "unknown escape \\%c", src[j+1]))
	}
}
