package cc

// AST node definitions. The parser produces these; the code generator
// walks them. Nodes carry the source line for coverage attribution.

type node interface{ nodeLine() int }

type base struct{ line int }

func (b base) nodeLine() int { return b.line }

// ---- Expressions ----

type exprNode interface{ node }

// numLit is an integer or character literal.
type numLit struct {
	base
	val int64
}

// strLit is a string literal (lowered to an anonymous global).
type strLit struct {
	base
	val string
}

// identRef names a variable or function.
type identRef struct {
	base
	name string
}

// unary is op ∈ {"-", "!", "~", "*", "&", "++", "--", "p++", "p--"}
// (p-prefixed are postfix forms).
type unary struct {
	base
	op string
	x  exprNode
}

// binary is a binary operator; "&&" and "||" short-circuit.
type binary struct {
	base
	op   string
	l, r exprNode
}

// assign is l = r, or compound (op != "=", e.g. "+=").
type assign struct {
	base
	op   string
	l, r exprNode
}

// cond is c ? a : b.
type cond struct {
	base
	c, a, b exprNode
}

// index is arr[i].
type index struct {
	base
	arr, idx exprNode
}

// call invokes a named function.
type call struct {
	base
	name string
	args []exprNode
}

// cast is (type)x.
type cast struct {
	base
	to *Type
	x  exprNode
}

// sizeofExpr is sizeof(type).
type sizeofExpr struct {
	base
	t *Type
}

// ---- Statements ----

type stmtNode interface{ node }

// declStmt declares a local variable with optional initializer.
type declStmt struct {
	base
	name string
	t    *Type
	init exprNode // may be nil
}

// exprStmt evaluates an expression for side effects.
type exprStmt struct {
	base
	x exprNode
}

// blockStmt is { ... }.
type blockStmt struct {
	base
	stmts []stmtNode
}

// ifStmt is if (c) then else els (els may be nil).
type ifStmt struct {
	base
	c         exprNode
	then, els stmtNode
}

// whileStmt is while (c) body; doWhile distinguishes do { } while (c).
type whileStmt struct {
	base
	c       exprNode
	body    stmtNode
	doWhile bool
}

// forStmt is for (init; c; post) body; any part may be nil.
type forStmt struct {
	base
	init stmtNode
	c    exprNode
	post exprNode
	body stmtNode
}

// switchStmt lowers to an if-else chain in codegen.
type switchStmt struct {
	base
	x     exprNode
	cases []switchCase
}

type switchCase struct {
	val   int64
	isDef bool
	body  []stmtNode
	line  int
}

// breakStmt / continueStmt / returnStmt.
type breakStmt struct{ base }
type continueStmt struct{ base }
type returnStmt struct {
	base
	x exprNode // may be nil
}

// ---- Top level ----

// param is a function parameter.
type param struct {
	name string
	t    *Type
}

// funcDecl is a function definition or prototype (body == nil).
type funcDecl struct {
	base
	name   string
	ret    *Type
	params []param
	body   *blockStmt // nil for prototypes
}

// globalDecl is a file-scope variable.
type globalDecl struct {
	base
	name    string
	t       *Type
	init    exprNode // scalar init, may be nil
	strInit string   // for char arrays initialized from a string literal
	hasStr  bool
}

// unit is a parsed translation unit.
type unit struct {
	funcs   []*funcDecl
	globals []*globalDecl
}
