// Package cc compiles a C subset to CVM IR — the front end that plays
// the role clang/llvm-gcc plays for KLEE. Target programs and the POSIX
// model prelude are written in this dialect.
//
// # Supported language
//
// Types:
//   - char (unsigned by default; "signed char" available), int (32-bit
//     signed), unsigned int, long / long long (64-bit), unsigned long,
//     void (function returns only)
//   - pointers (any depth), one-dimensional arrays of scalars
//     (globals and locals), array parameters (decay to pointers)
//
// Declarations:
//   - functions with fixed parameter lists; prototypes for forward or
//     extern references; extern/static qualifiers are accepted and
//     ignored
//   - file-scope variables with constant initializers; char arrays may
//     be initialized from string literals
//   - local variables anywhere in a block, with initializers and
//     comma-separated declarator lists
//
// Statements: expression statements, if/else, while, do-while, for,
// switch/case/default with fallthrough, break, continue, return,
// nested blocks.
//
// Expressions: the full C operator set except the conditional comma
// corner cases — assignment and compound assignment (+=, -=, *=, /=,
// %=, &=, |=, ^=, <<=, >>=), ternary ?:, short-circuit && and ||,
// bitwise and shift operators, comparisons, unary - ! ~ * & ++ --
// (prefix and postfix), array indexing, pointer arithmetic (scaled by
// element size, including pointer difference), casts, sizeof(type),
// character and string literals, decimal and hex integer literals,
// and the comma operator.
//
// # Deliberate omissions
//
// structs/unions/enums/typedef, function pointers, multi-dimensional
// arrays, varargs, floating point, goto, and the preprocessor (lines
// starting with '#' are skipped). The miniature targets and the POSIX
// model do not need them; thread entry points are named by string
// (cloud9_thread_create("fn", arg)) instead of function pointers.
//
// # Semantics notes
//
//   - char is unsigned (the engine's symbolic inputs are byte
//     variables); write "signed char" when signed byte arithmetic is
//     wanted.
//   - Integer conversions follow simplified usual-arithmetic rules:
//     promote to at least int, wider operand wins, unsigned wins ties.
//   - Every local lives in its own memory object, so out-of-bounds
//     accesses between locals are detected exactly.
//   - Lines attributed to instructions drive line coverage; prelude
//     lines are excluded via Options.CoverageStartLine.
package cc
