package cc

import "fmt"

// parser is a recursive-descent parser for the C subset. Errors are
// reported by panicking with lexError; Compile recovers them.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) line() int   { return p.peek().line }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) token {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return t
	}
	panic(errf(t.line, "expected %q, found %q", text, t.String()))
}

func (p *parser) expectIdent() token {
	t := p.next()
	if t.kind != tokIdent {
		panic(errf(t.line, "expected identifier, found %q", t.String()))
	}
	return t
}

// isTypeStart reports whether the upcoming tokens begin a type.
func (p *parser) isTypeStart() bool {
	t := p.peek()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "void", "char", "int", "long", "unsigned", "signed", "const":
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() *Type {
	for p.accept("const") {
	}
	signed := true
	sawSign := false
	for {
		if p.accept("unsigned") {
			signed = false
			sawSign = true
			continue
		}
		if p.accept("signed") {
			signed = true
			sawSign = true
			continue
		}
		break
	}
	var t *Type
	tk := p.peek()
	switch {
	case p.accept("void"):
		t = TypeVoid
	case p.accept("char"):
		if sawSign && signed {
			t = TypeSChar
		} else {
			t = TypeChar
		}
	case p.accept("int"):
		if signed {
			t = TypeInt
		} else {
			t = TypeUInt
		}
	case p.accept("long"):
		p.accept("long") // accept "long long"
		p.accept("int")
		if signed {
			t = TypeLong
		} else {
			t = TypeULong
		}
	default:
		if sawSign {
			if signed {
				t = TypeInt
			} else {
				t = TypeUInt
			}
		} else {
			panic(errf(tk.line, "expected type, found %q", tk.String()))
		}
	}
	for p.accept("*") {
		t = Ptr(t)
		for p.accept("const") {
		}
	}
	return t
}

// parseUnit parses a whole translation unit.
func (p *parser) parseUnit() *unit {
	u := &unit{}
	for !p.atEOF() {
		p.accept("extern")
		p.accept("static")
		ln := p.line()
		t := p.parseType()
		name := p.expectIdent()
		if p.accept("(") {
			fd := p.parseFuncRest(ln, t, name.text)
			u.funcs = append(u.funcs, fd)
			continue
		}
		// Global variable (possibly array).
		g := &globalDecl{base: base{ln}, name: name.text, t: t}
		if p.accept("[") {
			n := p.next()
			if n.kind != tokNumber {
				panic(errf(n.line, "array size must be a number literal"))
			}
			p.expect("]")
			g.t = ArrayOf(t, n.val)
		}
		if p.accept("=") {
			tk := p.peek()
			if tk.kind == tokString && g.t.Kind == KArray {
				p.next()
				g.strInit = tk.text
				g.hasStr = true
			} else {
				g.init = p.parseAssign()
			}
		}
		p.expect(";")
		u.globals = append(u.globals, g)
	}
	return u
}

func (p *parser) parseFuncRest(ln int, ret *Type, name string) *funcDecl {
	fd := &funcDecl{base: base{ln}, name: name, ret: ret}
	if !p.accept(")") {
		if p.peek().kind == tokKeyword && p.peek().text == "void" &&
			p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
			p.next() // f(void)
			p.expect(")")
		} else {
			for {
				pt := p.parseType()
				var pname string
				if p.peek().kind == tokIdent {
					pname = p.expectIdent().text
				}
				// Array parameters decay to pointers.
				if p.accept("[") {
					if p.peek().kind == tokNumber {
						p.next()
					}
					p.expect("]")
					pt = Ptr(pt)
				}
				fd.params = append(fd.params, param{name: pname, t: pt.Decay()})
				if !p.accept(",") {
					p.expect(")")
					break
				}
			}
		}
	}
	if p.accept(";") {
		return fd // prototype
	}
	fd.body = p.parseBlock()
	return fd
}

func (p *parser) parseBlock() *blockStmt {
	ln := p.line()
	p.expect("{")
	blk := &blockStmt{base: base{ln}}
	for !p.accept("}") {
		blk.stmts = append(blk.stmts, p.parseStmt())
	}
	return blk
}

func (p *parser) parseStmt() stmtNode {
	ln := p.line()
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "{":
		return p.parseBlock()
	case p.accept(";"):
		return &blockStmt{base: base{ln}}
	case p.isTypeStart():
		return p.parseDecl()
	case p.accept("if"):
		p.expect("(")
		c := p.parseExpr()
		p.expect(")")
		then := p.parseStmt()
		var els stmtNode
		if p.accept("else") {
			els = p.parseStmt()
		}
		return &ifStmt{base: base{ln}, c: c, then: then, els: els}
	case p.accept("while"):
		p.expect("(")
		c := p.parseExpr()
		p.expect(")")
		return &whileStmt{base: base{ln}, c: c, body: p.parseStmt()}
	case p.accept("do"):
		body := p.parseStmt()
		p.expect("while")
		p.expect("(")
		c := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &whileStmt{base: base{ln}, c: c, body: body, doWhile: true}
	case p.accept("for"):
		p.expect("(")
		var init stmtNode
		if !p.accept(";") {
			if p.isTypeStart() {
				init = p.parseDecl()
			} else {
				init = &exprStmt{base: base{ln}, x: p.parseExpr()}
				p.expect(";")
			}
		}
		var c exprNode
		if !p.accept(";") {
			c = p.parseExpr()
			p.expect(";")
		}
		var post exprNode
		if !p.accept(")") {
			post = p.parseExpr()
			p.expect(")")
		}
		return &forStmt{base: base{ln}, init: init, c: c, post: post, body: p.parseStmt()}
	case p.accept("switch"):
		return p.parseSwitch(ln)
	case p.accept("break"):
		p.expect(";")
		return &breakStmt{base: base{ln}}
	case p.accept("continue"):
		p.expect(";")
		return &continueStmt{base: base{ln}}
	case p.accept("return"):
		rs := &returnStmt{base: base{ln}}
		if !p.accept(";") {
			rs.x = p.parseExpr()
			p.expect(";")
		}
		return rs
	default:
		x := p.parseExpr()
		p.expect(";")
		return &exprStmt{base: base{ln}, x: x}
	}
}

func (p *parser) parseDecl() stmtNode {
	ln := p.line()
	t := p.parseType()
	name := p.expectIdent()
	d := &declStmt{base: base{ln}, name: name.text, t: t}
	if p.accept("[") {
		n := p.next()
		if n.kind != tokNumber {
			panic(errf(n.line, "array size must be a number literal"))
		}
		p.expect("]")
		d.t = ArrayOf(t, n.val)
	}
	if p.accept("=") {
		d.init = p.parseAssign()
	}
	// Support "int a = 1, b = 2;" by desugaring into a block.
	if p.accept(",") {
		blk := &blockStmt{base: base{ln}, stmts: []stmtNode{d}}
		for {
			n2 := p.expectIdent()
			d2 := &declStmt{base: base{ln}, name: n2.text, t: t}
			if p.accept("=") {
				d2.init = p.parseAssign()
			}
			blk.stmts = append(blk.stmts, d2)
			if !p.accept(",") {
				break
			}
		}
		p.expect(";")
		return blk
	}
	p.expect(";")
	return d
}

func (p *parser) parseSwitch(ln int) stmtNode {
	p.expect("(")
	x := p.parseExpr()
	p.expect(")")
	p.expect("{")
	sw := &switchStmt{base: base{ln}, x: x}
	for !p.accept("}") {
		cl := p.line()
		var sc switchCase
		sc.line = cl
		if p.accept("case") {
			neg := p.accept("-")
			n := p.next()
			if n.kind != tokNumber && n.kind != tokChar {
				panic(errf(n.line, "case label must be a constant"))
			}
			sc.val = n.val
			if neg {
				sc.val = -sc.val
			}
			p.expect(":")
		} else if p.accept("default") {
			sc.isDef = true
			p.expect(":")
		} else {
			panic(errf(cl, "expected case or default in switch"))
		}
		for {
			t := p.peek()
			if t.kind == tokKeyword && (t.text == "case" || t.text == "default") {
				break
			}
			if t.kind == tokPunct && t.text == "}" {
				break
			}
			sc.body = append(sc.body, p.parseStmt())
		}
		sw.cases = append(sw.cases, sc)
	}
	return sw
}

// ---- Expression parsing (precedence climbing) ----

func (p *parser) parseExpr() exprNode {
	x := p.parseAssign()
	for p.accept(",") {
		// Comma operator: evaluate both, yield right. Desugared via
		// binary op ",".
		r := p.parseAssign()
		x = &binary{base: base{p.line()}, op: ",", l: x, r: r}
	}
	return x
}

func (p *parser) parseAssign() exprNode {
	l := p.parseCond()
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.next()
			r := p.parseAssign()
			return &assign{base: base{t.line}, op: t.text, l: l, r: r}
		}
	}
	return l
}

func (p *parser) parseCond() exprNode {
	c := p.parseBinary(0)
	if p.accept("?") {
		a := p.parseAssign()
		p.expect(":")
		b := p.parseCond()
		return &cond{base: base{p.line()}, c: c, a: a, b: b}
	}
	return c
}

// binary operator precedence, lowest first.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) exprNode {
	l := p.parseUnary()
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return l
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return l
		}
		p.next()
		r := p.parseBinary(prec + 1)
		l = &binary{base: base{t.line}, op: t.text, l: l, r: r}
	}
}

func (p *parser) parseUnary() exprNode {
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.next()
			return &unary{base: base{t.line}, op: t.text, x: p.parseUnary()}
		case "++", "--":
			p.next()
			return &unary{base: base{t.line}, op: t.text, x: p.parseUnary()}
		case "(":
			// Either a cast or a parenthesized expression.
			save := p.pos
			p.next()
			if p.isTypeStart() {
				ty := p.parseType()
				if p.accept(")") {
					return &cast{base: base{t.line}, to: ty, x: p.parseUnary()}
				}
			}
			p.pos = save
		}
	}
	if t.kind == tokKeyword && t.text == "sizeof" {
		p.next()
		p.expect("(")
		var sz *sizeofExpr
		if p.isTypeStart() {
			ty := p.parseType()
			sz = &sizeofExpr{base: base{t.line}, t: ty}
		} else {
			// sizeof(expr): only for string-literal-free simple cases;
			// evaluate the type statically during codegen is complex, so
			// restrict to identifiers whose type we resolve there.
			panic(errf(t.line, "sizeof(expr) unsupported; use sizeof(type)"))
		}
		p.expect(")")
		return sz
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() exprNode {
	x := p.parsePrimary()
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return x
		}
		switch t.text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			x = &index{base: base{t.line}, arr: x, idx: idx}
		case "++":
			p.next()
			x = &unary{base: base{t.line}, op: "p++", x: x}
		case "--":
			p.next()
			x = &unary{base: base{t.line}, op: "p--", x: x}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() exprNode {
	t := p.next()
	switch t.kind {
	case tokNumber, tokChar:
		return &numLit{base: base{t.line}, val: t.val}
	case tokString:
		return &strLit{base: base{t.line}, val: t.text}
	case tokIdent:
		if p.accept("(") {
			c := &call{base: base{t.line}, name: t.text}
			if !p.accept(")") {
				for {
					c.args = append(c.args, p.parseAssign())
					if !p.accept(",") {
						p.expect(")")
						break
					}
				}
			}
			return c
		}
		return &identRef{base: base{t.line}, name: t.text}
	case tokPunct:
		if t.text == "(" {
			x := p.parseExpr()
			p.expect(")")
			return x
		}
	}
	panic(errf(t.line, "unexpected token %q in expression", t.String()))
}

var _ = fmt.Sprintf // keep fmt linked for debug helpers
