package cc

import (
	"strings"
	"testing"

	"cloud9/internal/cvm"
	"cloud9/internal/expr"
)

func compile(t *testing.T, src string) *cvm.Program {
	t.Helper()
	prog, err := Compile("t.c", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Compile("t.c", src, Options{})
	if err == nil {
		t.Fatal("expected a compile error")
	}
	return err
}

func TestLexerTokens(t *testing.T) {
	toks := lex(`int x = 0x1f + 'a'; // comment
	/* block */ char *s = "hi\n";`)
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "int" || toks[0].kind != tokKeyword {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[3].kind != tokNumber || toks[3].val != 0x1f {
		t.Errorf("hex literal = %v", toks[3])
	}
	if toks[5].kind != tokChar || toks[5].val != 'a' {
		t.Errorf("char literal = %v", toks[5])
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "hi\n" {
			found = true
		}
	}
	if !found {
		t.Errorf("string literal missing in %v", kinds)
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks := lex("int a;\nint b;\nint c;")
	for _, tk := range toks {
		if tk.text == "c" && tk.line != 3 {
			t.Errorf("c at line %d", tk.line)
		}
	}
}

func TestLexerPreprocessorSkipped(t *testing.T) {
	toks := lex("#include <stdio.h>\nint x;")
	if toks[0].text != "int" {
		t.Errorf("preprocessor not skipped: %v", toks[0])
	}
}

func TestCompileMinimal(t *testing.T) {
	prog := compile(t, `int main() { return 0; }`)
	if prog.Func("main") == nil {
		t.Fatal("main missing")
	}
}

func TestCompileErrorsAreDiagnosed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main() { return x; }`, "undefined identifier"},
		{`int main() { foo(); }`, "undeclared function"},
		{`int main( { return 0; }`, "expected"},
		{`int f(int a) { return a; } int main() { return f(1,2); }`, "args"},
		{`int main() { break; }`, "break outside"},
		{`int main() { continue; }`, "continue outside"},
		{`int main() { 5 = 3; return 0; }`, "not an lvalue"},
		{`int main() { int x; return *x; }`, "dereference of non-pointer"},
	}
	for _, c := range cases {
		err := compileErr(t, c.src)
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestPrototypesAllowForwardCalls(t *testing.T) {
	compile(t, `
		int helper(int x);
		int main() { return helper(1); }
		int helper(int x) { return x + 1; }`)
}

func TestGlobalInitializers(t *testing.T) {
	prog := compile(t, `
		int a = 42;
		int b = -1;
		long c = 1 << 20;
		char msg[4] = "hi";
		int main() { return 0; }`)
	byName := map[string]*cvm.Global{}
	for _, g := range prog.Globals {
		byName[g.Name] = g
	}
	if got := byName["a"]; got.Size != 4 || got.Init[0] != 42 {
		t.Errorf("a = %+v", got)
	}
	if got := byName["b"]; got.Init[0] != 0xff || got.Init[3] != 0xff {
		t.Errorf("b init = %v", got.Init)
	}
	if got := byName["c"]; got.Size != 8 || got.Init[2] != 0x10 {
		t.Errorf("c init = %v", got.Init)
	}
	if got := byName["msg"]; string(got.Init[:2]) != "hi" {
		t.Errorf("msg init = %q", got.Init)
	}
}

func TestNonConstGlobalInitRejected(t *testing.T) {
	err := compileErr(t, `
		int f(void);
		int g = f();
		int main() { return 0; }`)
	if !strings.Contains(err.Error(), "constant") {
		t.Errorf("error %q", err)
	}
}

func TestTypeSizes(t *testing.T) {
	if TypeChar.Size() != 1 || TypeInt.Size() != 4 || TypeLong.Size() != 8 {
		t.Fatal("scalar sizes wrong")
	}
	if Ptr(TypeInt).Size() != 8 {
		t.Fatal("pointer size wrong")
	}
	if ArrayOf(TypeInt, 10).Size() != 40 {
		t.Fatal("array size wrong")
	}
}

func TestUsualArithmeticConversions(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{TypeChar, TypeChar, TypeInt}, // both promote to int
		{TypeInt, TypeLong, TypeLong}, // wider wins
		{TypeUInt, TypeInt, TypeUInt}, // unsigned wins ties
		{TypeInt, TypeInt, TypeInt},
		{TypeULong, TypeInt, TypeULong},
	}
	for _, c := range cases {
		got := usualArith(c.a, c.b)
		if got.W != c.want.W || got.Signed != c.want.Signed {
			t.Errorf("usualArith(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if Ptr(TypeChar).String() != "char*" {
		t.Errorf("ptr string = %q", Ptr(TypeChar).String())
	}
	if ArrayOf(TypeInt, 3).String() != "int[3]" {
		t.Errorf("array string = %q", ArrayOf(TypeInt, 3).String())
	}
}

func TestCoverageStartLineStripsPrelude(t *testing.T) {
	src := "int helper() { return 1; }\nint main() { return helper(); }"
	progAll, err := Compile("t.c", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	progStripped, err := Compile("t.c", src, Options{CoverageStartLine: 2})
	if err != nil {
		t.Fatal(err)
	}
	if progStripped.CoverableLines() >= progAll.CoverableLines() {
		t.Errorf("stripping did not reduce coverable lines: %d vs %d",
			progStripped.CoverableLines(), progAll.CoverableLines())
	}
}

func TestGeneratedIRValidates(t *testing.T) {
	// A broad program exercising every construct; Compile validates the
	// IR internally, so success implies well-formed output.
	compile(t, `
		int g = 3;
		char buf[16];
		long wide = 0;

		int helper(int a, char *p) {
			return a + p[0];
		}

		int main() {
			int i;
			int acc = 0;
			for (i = 0; i < 4; i++) {
				acc += i;
				if (acc > 2) continue;
				acc ^= 1;
			}
			while (acc > 0) { acc--; if (acc == 1) break; }
			do { acc++; } while (acc < 3);
			switch (acc) {
			case 1: acc = 10; break;
			case 3: acc = 30; // fallthrough
			default: acc = acc + 1;
			}
			char *p = buf;
			p[0] = 'x';
			*(p + 1) = 'y';
			buf[2] = (char)(acc & 0xff);
			int t = acc > 5 ? 1 : 0;
			acc = t ? helper(acc, p) : -helper(1, buf);
			long l = (long)acc * sizeof(int);
			wide = l >> 2;
			g = !g;
			int neg = ~g;
			acc = neg % 7;
			acc++;
			--acc;
			return acc;
		}`)
}

func TestSignedVsUnsignedComparison(t *testing.T) {
	// Ensure comparisons pick signed/unsigned opcodes correctly.
	prog := compile(t, `
		int main() {
			unsigned int u = 1;
			int s = -1;
			char c = 200;
			if (u < 2) {}
			if (s < 0) {}
			if (c > 100) {} // char is unsigned in this dialect
			return 0;
		}`)
	var ops []cvm.Opcode
	for _, b := range prog.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == cvm.OpUlt || in.Op == cvm.OpSlt {
				ops = append(ops, in.Op)
			}
		}
	}
	if len(ops) != 3 {
		t.Fatalf("expected 3 comparisons, got %v", ops)
	}
	if ops[0] != cvm.OpUlt {
		t.Error("unsigned compare should be ult")
	}
	if ops[1] != cvm.OpSlt {
		t.Error("signed compare should be slt")
	}
}

func TestStringLiteralsBecomeGlobals(t *testing.T) {
	prog := compile(t, `
		char *f() { return "abc"; }
		int main() { f(); return 0; }`)
	found := false
	for _, g := range prog.Globals {
		if strings.HasPrefix(g.Name, ".str") && string(g.Init) == "abc\x00" {
			found = true
		}
	}
	if !found {
		t.Fatalf("string literal global missing: %+v", prog.Globals)
	}
}

func TestSizeofIsULong(t *testing.T) {
	prog := compile(t, `
		long f() { return sizeof(long) + sizeof(char*); }
		int main() { return 0; }`)
	// sizeof(long) + sizeof(char*) = 16; the function folds to consts.
	f := prog.Func("f")
	foundConst := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == cvm.OpConst && in.Imm == 8 && in.W == expr.W64 {
				foundConst = true
			}
		}
	}
	if !foundConst {
		t.Error("sizeof did not produce 8-byte constants")
	}
}

func TestVariadicExternAllowed(t *testing.T) {
	_, err := Compile("t.c", `
		int printf2(char *fmt);
		int main() { return 0; }`, Options{
		Externs: map[string]*Signature{
			"printf2": {Ret: TypeInt, Params: []*Type{Ptr(TypeChar)}, Variadic: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
