package cc

import (
	"fmt"

	"cloud9/internal/expr"
)

// Kind classifies types in the C subset.
type Kind int

// Type kinds.
const (
	KVoid Kind = iota
	KInt       // integer of some width/signedness
	KPtr
	KArray
)

// Type describes a C-subset type. Types are immutable after construction.
type Type struct {
	Kind   Kind
	W      expr.Width // KInt: value width
	Signed bool       // KInt
	Elem   *Type      // KPtr, KArray
	Len    int64      // KArray
}

// Predefined types.
var (
	TypeVoid  = &Type{Kind: KVoid}
	TypeChar  = &Type{Kind: KInt, W: expr.W8, Signed: false} // char is unsigned in this dialect
	TypeSChar = &Type{Kind: KInt, W: expr.W8, Signed: true}
	TypeInt   = &Type{Kind: KInt, W: expr.W32, Signed: true}
	TypeUInt  = &Type{Kind: KInt, W: expr.W32, Signed: false}
	TypeLong  = &Type{Kind: KInt, W: expr.W64, Signed: true}
	TypeULong = &Type{Kind: KInt, W: expr.W64, Signed: false}
)

// Ptr returns a pointer-to-t type.
func Ptr(t *Type) *Type { return &Type{Kind: KPtr, Elem: t} }

// ArrayOf returns an array type of n elements of t.
func ArrayOf(t *Type, n int64) *Type { return &Type{Kind: KArray, Elem: t, Len: n} }

// Size returns the storage size in bytes.
func (t *Type) Size() int64 {
	switch t.Kind {
	case KVoid:
		return 0
	case KInt:
		return int64(t.W.Bytes())
	case KPtr:
		return 8
	case KArray:
		return t.Elem.Size() * t.Len
	}
	panic("cc: bad type")
}

// Width returns the register width of a value of this type. Arrays decay
// to pointers (W64).
func (t *Type) Width() expr.Width {
	switch t.Kind {
	case KInt:
		return t.W
	case KPtr, KArray:
		return expr.W64
	case KVoid:
		return expr.W32 // tolerated only as a discarded call result
	}
	panic("cc: bad type")
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == KInt }

// IsPointerish reports whether t is a pointer or array.
func (t *Type) IsPointerish() bool { return t.Kind == KPtr || t.Kind == KArray }

// Decay converts arrays to element pointers (the usual C decay).
func (t *Type) Decay() *Type {
	if t.Kind == KArray {
		return Ptr(t.Elem)
	}
	return t
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		sign := ""
		if !t.Signed && t.W != expr.W8 {
			sign = "unsigned "
		}
		switch t.W {
		case expr.W8:
			if t.Signed {
				return "signed char"
			}
			return "char"
		case expr.W16:
			return sign + "short"
		case expr.W32:
			return sign + "int"
		case expr.W64:
			return sign + "long"
		}
		return fmt.Sprintf("%sint%d", sign, t.W)
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	}
	return "?"
}

// sameType reports structural type equality.
func sameType(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt:
		return a.W == b.W && a.Signed == b.Signed
	case KPtr, KArray:
		return a.Len == b.Len && sameType(a.Elem, b.Elem)
	}
	return true
}

// usualArith computes the common type for a binary arithmetic operation,
// following simplified usual-arithmetic-conversion rules: promote to at
// least int, then to the wider operand; unsigned wins ties.
func usualArith(a, b *Type) *Type {
	wa, wb := a.W, b.W
	if wa < expr.W32 {
		wa = expr.W32
	}
	if wb < expr.W32 {
		wb = expr.W32
	}
	w := wa
	if wb > w {
		w = wb
	}
	signed := a.Signed && b.Signed
	// After promotion, char/short become signed int per C rules.
	if a.W < expr.W32 {
		signed = true && (b.W < expr.W32 || b.Signed)
	}
	if b.W < expr.W32 {
		signed = a.W < expr.W32 || a.Signed
	}
	if a.W >= expr.W32 && b.W >= expr.W32 {
		signed = a.Signed && b.Signed
	}
	if w == expr.W32 {
		if signed {
			return TypeInt
		}
		return TypeUInt
	}
	if signed {
		return TypeLong
	}
	return TypeULong
}
