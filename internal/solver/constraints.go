// Package solver decides satisfiability of path conditions and produces
// concrete models (test inputs). It plays the role STP plays for KLEE.
//
// All symbolic variables are bytes (see package expr), so satisfiability
// reduces to a constraint-satisfaction search over byte domains. The
// solver layers, from the outside in:
//
//  1. a counterexample/model cache keyed on structural hashes (O(1) to
//     compute: expressions are hash-consed, see package expr),
//  2. unit propagation of equalities with constants,
//  3. independence partitioning (KLEE's independent-constraint
//     optimization): only the constraint group transitively sharing
//     variables with the query is solved,
//  4. interval pruning from unary comparisons, and
//  5. backtracking search with forward checking over 256-value domains.
package solver

import (
	"cloud9/internal/expr"
)

// ConstraintSet is an immutable, persistent set of boolean constraints
// (the path condition). Extending a set shares structure with its parent,
// so cloning execution states is O(1) in the constraint count.
type ConstraintSet struct {
	parent *ConstraintSet
	c      *expr.Expr
	depth  int
	hash   uint64
}

// EmptySet is the constraint set with no constraints.
var EmptySet = (*ConstraintSet)(nil)

// Append returns a new set containing all of cs plus c. Constant-true
// constraints are dropped. The set hash is extended from c's cached
// structural hash (expressions are hash-consed), so appending is O(1)
// regardless of c's size.
func (cs *ConstraintSet) Append(c *expr.Expr) *ConstraintSet {
	if c.Width() != expr.W1 {
		panic("solver: non-boolean constraint")
	}
	if c.IsTrue() {
		return cs
	}
	h, d := uint64(0), 0
	if cs != nil {
		h, d = cs.hash, cs.depth
	}
	return &ConstraintSet{parent: cs, c: c, depth: d + 1, hash: h*1099511628211 ^ c.Hash()}
}

// Len returns the number of constraints in the set.
func (cs *ConstraintSet) Len() int {
	if cs == nil {
		return 0
	}
	return cs.depth
}

// Hash returns an order-sensitive structural hash of the set. O(1): the
// hash is maintained incrementally by Append from cached node hashes.
func (cs *ConstraintSet) Hash() uint64 {
	if cs == nil {
		return 0
	}
	return cs.hash
}

// Slice materializes the constraints oldest-first.
func (cs *ConstraintSet) Slice() []*expr.Expr {
	out := make([]*expr.Expr, cs.Len())
	i := cs.Len() - 1
	for n := cs; n != nil; n = n.parent {
		out[i] = n.c
		i--
	}
	return out
}

// HasFalse reports whether the set contains the constant-false constraint
// (a trivially unsatisfiable path).
func (cs *ConstraintSet) HasFalse() bool {
	for n := cs; n != nil; n = n.parent {
		if n.c.IsFalse() {
			return true
		}
	}
	return false
}

// Vars returns the distinct variable ids referenced by the set. Each
// constraint contributes its cached free-variable summary; no expression
// DAG is traversed.
func (cs *ConstraintSet) Vars() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for n := cs; n != nil; n = n.parent {
		out = n.c.Vars(seen, out)
	}
	return out
}

// EvalAll reports whether every constraint is satisfied by a.
// Missing variables make it return false.
func (cs *ConstraintSet) EvalAll(a expr.Assignment) bool {
	for n := cs; n != nil; n = n.parent {
		v, ok := n.c.Eval(a)
		if !ok || v == 0 {
			return false
		}
	}
	return true
}

// flatten splits nested conjunctions into their conjuncts, which exposes
// more structure to unit propagation and independence analysis.
func flatten(c *expr.Expr, out []*expr.Expr) []*expr.Expr {
	if c.Op() == expr.OpLAnd {
		out = flatten(c.Kid(0), out)
		return flatten(c.Kid(1), out)
	}
	return append(out, c)
}

// Flattened returns the constraints with top-level conjunctions split.
func (cs *ConstraintSet) Flattened() []*expr.Expr {
	var out []*expr.Expr
	for _, c := range cs.Slice() {
		out = flatten(c, out)
	}
	return out
}
