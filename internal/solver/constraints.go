// Package solver decides satisfiability of path conditions and produces
// concrete models (test inputs). It plays the role STP plays for KLEE.
//
// All symbolic variables are bytes (see package expr), so satisfiability
// reduces to a constraint-satisfaction search over byte domains. The
// solver is *incremental*: path conditions grow one constraint at a
// time (ConstraintSet is a persistent parent-linked tree), and the
// solver memoizes the preprocessed solve state — flattened form,
// unit-propagation fixpoint, independence partition, witness model — of
// every set node it has seen (incremental.go), deriving a child's state
// from its parent's in time proportional to the new constraint's cone
// instead of the whole set.
//
// A query runs through a three-tier pipeline, each tier strictly
// cheaper than the next and consulted first:
//
// Tier 1 — interval abstraction (interval.go). Every memoized set state
// carries per-variable [lo,hi] bounds, a sound over-approximation of
// the set's solutions refined incrementally on Append (unit adoption
// plus a capped backward-narrowing fixpoint over the fresh groups, COW-
// shared with the parent when nothing narrowed). Branch conditions
// whose abstract value collapses to [1,1] or [0,0] are answered with
// zero search — a Fork settles BOTH directions from one evaluation —
// and a set whose bounds go empty is proved unsat before any group
// assembly. Interval-true implies sat only because the engine queries
// conditions against feasible path conditions (the same invariant the
// fused Fork fast path relies on), so the tier is bypassed for
// model-producing queries.
//
// Tier 2 — exact caches over query structure:
//
//   - a result cache keyed on structural hashes (O(1) to compute:
//     expressions are hash-consed, see package expr), with budget
//     failures stamped by the budget they failed under,
//   - witness-model reuse: each set carries a model known to satisfy
//     it; one evaluation answers a query the model already witnesses,
//   - a counterexample/model subsumption cache keyed on sorted
//     conjunct-hash sets (subsume.go), indexed past a small linear
//     threshold by per-base buckets plus a UBTree set-trie on the
//     unsat side: supersets of known-unsat sets are unsat, subsets of
//     known-sat sets reuse the stored model — the paper's §6
//     "Constraint Caches".
//
// Tier 3 — the search itself: incremental unit propagation of
// equalities with constants (re-run only over the new constraint's
// cone), independence partitioning (KLEE's independent-constraint
// optimization; only groups sharing variables with the query are
// solved, solved groups memoized order-insensitively in a group cache),
// and backtracking search with forward checking over 256-value word-
// mask domains. Searches that do run start from interval-narrowed
// domains — except model-producing ones, which stay unseeded so the
// group cache holds only canonical models (§6: cached inputs must
// replay identically everywhere).
//
// The pre-incremental from-scratch pipeline survives as the reference
// implementation (ReferenceMayBeTrue/ReferenceSolve); differential
// tests check the incremental path agrees with it query-for-query, and
// the CI benchmarks gate the incremental speedup against it.
package solver

import (
	"cloud9/internal/expr"
)

// ConstraintSet is an immutable, persistent set of boolean constraints
// (the path condition). Extending a set shares structure with its parent,
// so cloning execution states is O(1) in the constraint count.
type ConstraintSet struct {
	parent *ConstraintSet
	c      *expr.Expr
	depth  int
	hash   uint64
}

// EmptySet is the constraint set with no constraints.
var EmptySet = (*ConstraintSet)(nil)

// Append returns a new set containing all of cs plus c. Constant-true
// constraints are dropped. The set hash is extended from c's cached
// structural hash (expressions are hash-consed), so appending is O(1)
// regardless of c's size.
func (cs *ConstraintSet) Append(c *expr.Expr) *ConstraintSet {
	if c.Width() != expr.W1 {
		panic("solver: non-boolean constraint")
	}
	if c.IsTrue() {
		return cs
	}
	h, d := uint64(0), 0
	if cs != nil {
		h, d = cs.hash, cs.depth
	}
	return &ConstraintSet{parent: cs, c: c, depth: d + 1, hash: h*1099511628211 ^ c.Hash()}
}

// Len returns the number of constraints in the set.
func (cs *ConstraintSet) Len() int {
	if cs == nil {
		return 0
	}
	return cs.depth
}

// Hash returns an order-sensitive structural hash of the set. O(1): the
// hash is maintained incrementally by Append from cached node hashes.
func (cs *ConstraintSet) Hash() uint64 {
	if cs == nil {
		return 0
	}
	return cs.hash
}

// Slice materializes the constraints oldest-first.
func (cs *ConstraintSet) Slice() []*expr.Expr {
	out := make([]*expr.Expr, cs.Len())
	i := cs.Len() - 1
	for n := cs; n != nil; n = n.parent {
		out[i] = n.c
		i--
	}
	return out
}

// HasFalse reports whether the set contains the constant-false constraint
// (a trivially unsatisfiable path).
func (cs *ConstraintSet) HasFalse() bool {
	for n := cs; n != nil; n = n.parent {
		if n.c.IsFalse() {
			return true
		}
	}
	return false
}

// Vars returns the distinct variable ids referenced by the set. Each
// constraint contributes its cached free-variable summary; no expression
// DAG is traversed.
func (cs *ConstraintSet) Vars() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for n := cs; n != nil; n = n.parent {
		out = n.c.Vars(seen, out)
	}
	return out
}

// EvalAll reports whether every constraint is satisfied by a.
// Missing variables make it return false.
func (cs *ConstraintSet) EvalAll(a expr.Assignment) bool {
	for n := cs; n != nil; n = n.parent {
		v, ok := n.c.Eval(a)
		if !ok || v == 0 {
			return false
		}
	}
	return true
}

// flatten splits nested conjunctions into their conjuncts, which exposes
// more structure to unit propagation and independence analysis.
func flatten(c *expr.Expr, out []*expr.Expr) []*expr.Expr {
	if c.Op() == expr.OpLAnd {
		out = flatten(c.Kid(0), out)
		return flatten(c.Kid(1), out)
	}
	return append(out, c)
}

// Flattened returns the constraints with top-level conjunctions split.
func (cs *ConstraintSet) Flattened() []*expr.Expr {
	var out []*expr.Expr
	for _, c := range cs.Slice() {
		out = flatten(c, out)
	}
	return out
}
