package solver

// Interval abstraction over the memoized solve states: every setState
// carries a per-variable [lo,hi] bounds map, derived incrementally in
// extend exactly like the unit assignment and the group partition —
// copy-on-write against the parent, refined to a fixpoint from the
// conjuncts the extension introduced or rewrote. The bounds are a sound
// over-approximation of the set's solutions (every solution assigns
// each variable a value inside its interval), which buys three things:
//
//   - a branch condition whose interval evaluates to a constant is
//     decided with zero search: definitely-false conditions are unsat
//     outright, and definitely-true conditions are sat by the
//     exploration invariant (states only exist on feasible paths, the
//     same invariant the independent-group skip relies on);
//   - an empty interval proves the extended set unsatisfiable before
//     groups are even assembled; and
//   - queries that survive to backtracking search start from
//     interval-narrowed domains instead of full 256-value domains.
//
// Forward evaluation (evalIval) abstracts each operator over unsigned
// intervals with explicit wrap handling; backward refinement
// (boundsRefiner) pushes asserted comparisons, equalities and the
// invertible arithmetic chains (add-const, zext, sext, concat) down to
// variable bounds. Both are pure functions of the Append chain, so
// eviction/rebuild and cross-worker replays stay canonical.

import (
	"math/bits"

	"cloud9/internal/expr"
)

// ival8 is the byte bounds of one symbolic variable.
type ival8 struct{ lo, hi uint8 }

// boundsMap maps variable id → byte bounds. Absent means [0,255].
type boundsMap map[uint64]ival8

// ival is an unsigned interval [lo,hi] over a width-w value.
type ival struct{ lo, hi uint64 }

func (iv ival) singleton() bool { return iv.lo == iv.hi }

const (
	// intervalMaxNodes skips interval work on oversized expressions:
	// evalIval re-walks shared subtrees per occurrence (like Eval), so
	// huge DAGs are not worth abstracting.
	intervalMaxNodes = 1 << 12
	// intervalMaxPasses caps the refinement fixpoint per extension.
	// Bounds only ever narrow, so the cap trades a little precision on
	// long propagation chains for a hard latency bound; the cap must be
	// deterministic (and is), or rebuilt states would diverge.
	intervalMaxPasses = 4
)

func signBit(w expr.Width) uint64 { return 1 << (uint(w) - 1) }

// lenMask returns the all-ones mask covering v's bit length (the
// tightest power-of-two-minus-one upper bound for OR/XOR results).
func lenMask(v uint64) uint64 {
	n := bits.Len64(v)
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// allOnesMask reports whether m is of the form 2^k - 1 (a low-bit
// all-ones mask, for which x & m acts as x mod 2^k).
func allOnesMask(m uint64) bool { return m&(m+1) == 0 }

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// condDecided evaluates cond's interval under the bounds map. A [1,1]
// interval means cond holds on every assignment inside the bounds —
// hence on every solution of the set; [0,0] means it holds on none.
func condDecided(cond *expr.Expr, b boundsMap) (decided, truth bool) {
	if cond == nil || cond.Size() > intervalMaxNodes {
		return false, false
	}
	iv := evalIval(cond, b)
	if iv.lo >= 1 {
		return true, true
	}
	if iv.hi == 0 {
		return true, false
	}
	return false, false
}

// evalIval computes a sound unsigned interval for e under the variable
// bounds b: every value e can take when its variables range over their
// bounds lies in the result. Unhandled or wrap-ambiguous cases return
// the full range for e's width.
func evalIval(e *expr.Expr, b boundsMap) ival {
	mask := e.Width().Mask()
	top := ival{0, mask}
	switch e.Op() {
	case expr.OpConst:
		v := e.ConstVal()
		return ival{v, v}

	case expr.OpVar:
		if iv, ok := b[e.VarID()]; ok {
			return ival{uint64(iv.lo), uint64(iv.hi)}
		}
		return ival{0, 255}

	case expr.OpAdd:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		loSum, loCarry := bits.Add64(l.lo, r.lo, 0)
		hiSum, hiCarry := bits.Add64(l.hi, r.hi, 0)
		loOv := loCarry != 0 || loSum > mask
		hiOv := hiCarry != 0 || hiSum > mask
		switch {
		case !hiOv:
			return ival{loSum, hiSum} // no endpoint wraps
		case loOv:
			return ival{loSum & mask, hiSum & mask} // both wrap: order preserved
		default:
			return top // straddles the wrap point
		}

	case expr.OpSub:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		loD, loBorrow := bits.Sub64(l.lo, r.hi, 0)
		hiD, hiBorrow := bits.Sub64(l.hi, r.lo, 0)
		switch {
		case loBorrow == 0:
			return ival{loD, hiD}
		case hiBorrow != 0:
			return ival{loD & mask, hiD & mask}
		default:
			return top
		}

	case expr.OpMul:
		if e.Width() > expr.W32 {
			return top // product may overflow the uint64 scratch
		}
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		if hi := l.hi * r.hi; hi <= mask {
			return ival{l.lo * r.lo, hi}
		}
		return top

	case expr.OpUDiv:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		if r.lo == 0 {
			return top
		}
		return ival{l.lo / r.hi, l.hi / r.lo}

	case expr.OpURem:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		if r.lo == 0 {
			return top
		}
		if l.hi < r.lo {
			return l
		}
		return ival{0, r.hi - 1}

	case expr.OpAnd:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		// Masking with a low-bit all-ones constant that already covers
		// the other side's range is the identity (x & 0xff for byte-fed
		// x — the shape every widened byte load takes).
		if l.singleton() && allOnesMask(l.lo) && r.hi <= l.lo {
			return r
		}
		if r.singleton() && allOnesMask(r.lo) && l.hi <= r.lo {
			return l
		}
		return ival{0, minU(l.hi, r.hi)}

	case expr.OpOr:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		return ival{maxU(l.lo, r.lo), lenMask(l.hi | r.hi)}

	case expr.OpXor:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		return ival{0, lenMask(l.hi | r.hi)}

	case expr.OpShl:
		r := evalIval(e.Kid(1), b)
		if !r.singleton() {
			return top
		}
		if r.lo >= uint64(e.Width()) {
			return ival{0, 0}
		}
		l := evalIval(e.Kid(0), b)
		if l.hi <= mask>>r.lo {
			return ival{l.lo << r.lo, l.hi << r.lo}
		}
		return top

	case expr.OpLShr:
		r := evalIval(e.Kid(1), b)
		if !r.singleton() {
			return top
		}
		if r.lo >= uint64(e.Width()) {
			return ival{0, 0}
		}
		l := evalIval(e.Kid(0), b)
		return ival{l.lo >> r.lo, l.hi >> r.lo}

	case expr.OpAShr:
		l := evalIval(e.Kid(0), b)
		if l.hi >= signBit(e.Width()) {
			return top // possibly negative: sign fill
		}
		r := evalIval(e.Kid(1), b)
		if !r.singleton() {
			return ival{0, l.hi}
		}
		sh := r.lo
		if sh >= uint64(e.Width()) {
			sh = uint64(e.Width()) - 1
		}
		return ival{l.lo >> sh, l.hi >> sh}

	case expr.OpEq:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		if l.hi < r.lo || r.hi < l.lo {
			return ival{0, 0}
		}
		if l.singleton() && r.singleton() && l.lo == r.lo {
			return ival{1, 1}
		}
		return ival{0, 1}

	case expr.OpUlt:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		return cmpIval(l, r, true)

	case expr.OpUle:
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		return cmpIval(l, r, false)

	case expr.OpSlt, expr.OpSle:
		kw := e.Kid(0).Width()
		sb := signBit(kw)
		l, r := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		// Signed order equals unsigned order on sign-flipped values,
		// and sign-stable intervals stay intervals under the flip.
		if (l.hi < sb || l.lo >= sb) && (r.hi < sb || r.lo >= sb) {
			return cmpIval(ival{l.lo ^ sb, l.hi ^ sb}, ival{r.lo ^ sb, r.hi ^ sb},
				e.Op() == expr.OpSlt)
		}
		return ival{0, 1}

	case expr.OpNot:
		k := evalIval(e.Kid(0), b)
		if k.hi == 0 {
			return ival{1, 1}
		}
		if k.lo >= 1 {
			return ival{0, 0}
		}
		return ival{0, 1}

	case expr.OpLAnd:
		l := evalIval(e.Kid(0), b)
		if l.hi == 0 {
			return ival{0, 0}
		}
		r := evalIval(e.Kid(1), b)
		if r.hi == 0 {
			return ival{0, 0}
		}
		if l.lo >= 1 && r.lo >= 1 {
			return ival{1, 1}
		}
		return ival{0, 1}

	case expr.OpLOr:
		l := evalIval(e.Kid(0), b)
		if l.lo >= 1 {
			return ival{1, 1}
		}
		r := evalIval(e.Kid(1), b)
		if r.lo >= 1 {
			return ival{1, 1}
		}
		if l.hi == 0 && r.hi == 0 {
			return ival{0, 0}
		}
		return ival{0, 1}

	case expr.OpConcat:
		h, l := evalIval(e.Kid(0), b), evalIval(e.Kid(1), b)
		loW := e.Kid(1).Width()
		return ival{h.lo<<loW | l.lo, h.hi<<loW | l.hi}

	case expr.OpExtract:
		k := evalIval(e.Kid(0), b)
		off := e.ExtractOff()
		y := ival{k.lo >> off, k.hi >> off}
		if y.hi <= mask {
			return y
		}
		return top

	case expr.OpZExt:
		return evalIval(e.Kid(0), b)

	case expr.OpSExt:
		kw := e.Kid(0).Width()
		k := evalIval(e.Kid(0), b)
		sb := signBit(kw)
		if k.hi < sb {
			return k // non-negative: identity
		}
		if k.lo >= sb {
			// entirely negative: sign extension preserves unsigned order
			return ival{
				uint64(expr.SignedConst(k.lo, kw)) & mask,
				uint64(expr.SignedConst(k.hi, kw)) & mask,
			}
		}
		return top

	case expr.OpIte:
		c := evalIval(e.Kid(0), b)
		if c.lo >= 1 {
			return evalIval(e.Kid(1), b)
		}
		if c.hi == 0 {
			return evalIval(e.Kid(2), b)
		}
		a, d := evalIval(e.Kid(1), b), evalIval(e.Kid(2), b)
		return ival{minU(a.lo, d.lo), maxU(a.hi, d.hi)}
	}
	return top
}

// cmpIval decides l <cmp> r over unsigned intervals (strict: "<",
// otherwise "≤") as a boolean interval.
func cmpIval(l, r ival, strict bool) ival {
	if strict {
		if l.hi < r.lo {
			return ival{1, 1}
		}
		if l.lo >= r.hi {
			return ival{0, 0}
		}
	} else {
		if l.hi <= r.lo {
			return ival{1, 1}
		}
		if l.lo > r.hi {
			return ival{0, 0}
		}
	}
	return ival{0, 1}
}

// boundsRefiner narrows a bounds map from asserted conjuncts,
// copy-on-write against the (possibly parent-shared) input map. conflict
// is set when some variable's interval empties — the asserted conjuncts
// are unsatisfiable.
type boundsRefiner struct {
	b        boundsMap
	owned    bool
	changed  bool
	conflict bool
}

func (r *boundsRefiner) narrowVar(id uint64, t ival) {
	if r.conflict {
		return
	}
	cur := ival8{0, 255}
	if iv, ok := r.b[id]; ok {
		cur = iv
	}
	lo, hi := uint64(cur.lo), uint64(cur.hi)
	if t.lo > lo {
		lo = t.lo
	}
	if t.hi < hi {
		hi = t.hi
	}
	if lo > hi {
		r.conflict = true
		return
	}
	if lo == uint64(cur.lo) && hi == uint64(cur.hi) {
		return
	}
	if !r.owned {
		nb := make(boundsMap, len(r.b)+4)
		for k, v := range r.b {
			nb[k] = v
		}
		r.b = nb
		r.owned = true
	}
	r.b[id] = ival8{uint8(lo), uint8(hi)}
	r.changed = true
}

// narrowCond refines the bounds from conjunct c asserted to truth.
func (r *boundsRefiner) narrowCond(c *expr.Expr, truth bool) {
	if r.conflict {
		return
	}
	switch c.Op() {
	case expr.OpConst:
		if (c.ConstVal() != 0) != truth {
			r.conflict = true
		}

	case expr.OpNot:
		r.narrowCond(c.Kid(0), !truth)

	case expr.OpLAnd:
		if truth {
			r.narrowCond(c.Kid(0), true)
			r.narrowCond(c.Kid(1), true)
			return
		}
		// ¬(l ∧ r) only narrows when one side is known true.
		if l := evalIval(c.Kid(0), r.b); l.lo >= 1 {
			r.narrowCond(c.Kid(1), false)
		} else if rr := evalIval(c.Kid(1), r.b); rr.lo >= 1 {
			r.narrowCond(c.Kid(0), false)
		}

	case expr.OpLOr:
		if !truth {
			r.narrowCond(c.Kid(0), false)
			r.narrowCond(c.Kid(1), false)
			return
		}
		// (l ∨ r) only narrows when one side is known false.
		if l := evalIval(c.Kid(0), r.b); l.hi == 0 {
			r.narrowCond(c.Kid(1), true)
		} else if rr := evalIval(c.Kid(1), r.b); rr.hi == 0 {
			r.narrowCond(c.Kid(0), true)
		}

	case expr.OpEq:
		a, b := c.Kid(0), c.Kid(1)
		ia, ib := evalIval(a, r.b), evalIval(b, r.b)
		if truth {
			r.narrowExpr(a, ib)
			r.narrowExpr(b, ia)
			return
		}
		if ia.singleton() && ib.singleton() {
			if ia.lo == ib.lo {
				r.conflict = true
			}
			return
		}
		// x ≠ [v,v]: trim a matching interval endpoint.
		if ib.singleton() {
			r.trimNe(a, ia, ib.lo)
		} else if ia.singleton() {
			r.trimNe(b, ib, ia.lo)
		}

	case expr.OpUlt:
		r.narrowCmp(c.Kid(0), c.Kid(1), truth, true)

	case expr.OpUle:
		r.narrowCmp(c.Kid(0), c.Kid(1), truth, false)

	case expr.OpSlt, expr.OpSle:
		a, b := c.Kid(0), c.Kid(1)
		sb := signBit(a.Width())
		ia, ib := evalIval(a, r.b), evalIval(b, r.b)
		// Delegate to the unsigned rules when both sides are sign-stable
		// in the same region (there the signed and unsigned orders agree).
		sameNonNeg := ia.hi < sb && ib.hi < sb
		sameNeg := ia.lo >= sb && ib.lo >= sb
		if sameNonNeg || sameNeg {
			r.narrowCmp(a, b, truth, c.Op() == expr.OpSlt)
		}
	}
}

// narrowCmp refines from the unsigned comparison a < b (strict) or
// a ≤ b (non-strict), asserted to truth.
func (r *boundsRefiner) narrowCmp(a, b *expr.Expr, truth, strict bool) {
	mask := a.Width().Mask()
	ia, ib := evalIval(a, r.b), evalIval(b, r.b)
	if !truth { // ¬(a < b) ≡ b ≤ a, ¬(a ≤ b) ≡ b < a
		a, b, ia, ib = b, a, ib, ia
		strict = !strict
	}
	if strict {
		if ib.hi == 0 {
			r.conflict = true // a < 0 is impossible
			return
		}
		r.narrowExpr(a, ival{0, ib.hi - 1})
		if r.conflict {
			return
		}
		if ia.lo == mask {
			r.conflict = true // max < b is impossible
			return
		}
		r.narrowExpr(b, ival{ia.lo + 1, mask})
		return
	}
	r.narrowExpr(a, ival{0, ib.hi})
	if r.conflict {
		return
	}
	r.narrowExpr(b, ival{ia.lo, mask})
}

// trimNe removes the single excluded value v from e's interval when it
// sits on an endpoint.
func (r *boundsRefiner) trimNe(e *expr.Expr, ie ival, v uint64) {
	switch {
	case ie.lo == v:
		r.narrowExpr(e, ival{v + 1, ie.hi})
	case ie.hi == v:
		r.narrowExpr(e, ival{ie.lo, v - 1})
	}
}

// narrowExpr intersects the values e may take with target t, pushing the
// narrowing down to variable bounds through the invertible chain
// operators. A provably empty intersection sets conflict.
func (r *boundsRefiner) narrowExpr(e *expr.Expr, t ival) {
	if r.conflict {
		return
	}
	mask := e.Width().Mask()
	if t.hi > mask {
		t.hi = mask
	}
	if t.lo > t.hi {
		r.conflict = true
		return
	}
	if t.lo == 0 && t.hi == mask {
		return // no information
	}
	switch e.Op() {
	case expr.OpConst:
		if v := e.ConstVal(); v < t.lo || v > t.hi {
			r.conflict = true
		}

	case expr.OpVar:
		r.narrowVar(e.VarID(), t)

	case expr.OpZExt:
		if t.lo > e.Kid(0).Width().Mask() {
			r.conflict = true // required value exceeds the operand's range
			return
		}
		r.narrowExpr(e.Kid(0), t)

	case expr.OpSExt:
		// Identity on the non-negative region; negative and mixed
		// targets are skipped (still sound — skipping never narrows).
		if t.hi < signBit(e.Kid(0).Width()) {
			r.narrowExpr(e.Kid(0), t)
		}

	case expr.OpAdd:
		// Canonical form keeps constants on the left: (add c x) ∈ t
		// ⟺ x ∈ t - c when the shifted interval does not wrap.
		if e.Kid(0).IsConst() {
			c := e.Kid(0).ConstVal()
			lo, hi := (t.lo-c)&mask, (t.hi-c)&mask
			if lo <= hi {
				r.narrowExpr(e.Kid(1), ival{lo, hi})
			}
		}

	case expr.OpAnd:
		// (x & m) with an all-ones mask already covering x's range is x
		// itself, so the narrowing passes straight through. The mask
		// check uses the operand's *current* interval — sound because
		// narrowings only shrink it.
		if c0 := e.Kid(0); c0.IsConst() && allOnesMask(c0.ConstVal()) {
			if k := evalIval(e.Kid(1), r.b); k.hi <= c0.ConstVal() {
				r.narrowExpr(e.Kid(1), t)
			}
		} else if c1 := e.Kid(1); c1.IsConst() && allOnesMask(c1.ConstVal()) {
			if k := evalIval(e.Kid(0), r.b); k.hi <= c1.ConstVal() {
				r.narrowExpr(e.Kid(0), t)
			}
		}

	case expr.OpConcat:
		loW := e.Kid(1).Width()
		hLo, hHi := t.lo>>loW, t.hi>>loW
		r.narrowExpr(e.Kid(0), ival{hLo, hHi})
		if r.conflict {
			return
		}
		if hLo == hHi {
			r.narrowExpr(e.Kid(1), ival{t.lo & loW.Mask(), t.hi & loW.Mask()})
		}
	}
}

// refineBounds runs the narrowing fixpoint over the given groups'
// conjuncts (the constraints a state extension introduced or rewrote).
// ok=false reports an empty interval: the extended set is unsatisfiable.
func refineBounds(r *boundsRefiner, groups []*igroup) (ok bool) {
	for pass := 0; pass < intervalMaxPasses; pass++ {
		r.changed = false
		for _, g := range groups {
			for _, gc := range g.cons {
				if gc.Size() > intervalMaxNodes {
					continue
				}
				r.narrowCond(gc, true)
				if r.conflict {
					return false
				}
			}
		}
		if !r.changed {
			break
		}
	}
	return true
}
