package solver

// Counterexample/model subsumption cache (KLEE-style, the paper's §6
// "Constraint Caches"). Queries are keyed by the sorted multiset of
// their conjunct hashes (O(1) per conjunct — expressions are
// hash-consed), which makes two set-theoretic deductions cheap:
//
//   - a query whose conjunct set is a SUPERSET of a known-unsat set is
//     unsat without solving (adding constraints cannot revive an
//     unsatisfiable core), and
//   - a query whose conjunct set is a SUBSET of a known-sat set is sat,
//     and the stored model witnesses it (dropping constraints cannot
//     invalidate a model).
//
// Keys are kept split as (base, extra): the sorted hashes of the
// constraint set itself — a slice shared identity-intact across every
// query against that set — plus the few sorted hashes of the query
// condition. Entries whose base is the *same slice* as the query's
// (the dominant case: many branch queries against one path condition)
// are decided by comparing only the extras, O(|extra| · log N); the
// full sorted-merge subset walk runs only for cross-set pairs, behind
// an O(1) bounds pre-filter. Entries are bounded FIFO lists.

import "cloud9/internal/expr"

const (
	// subsumeMaxEntries bounds each FIFO side of the cache.
	subsumeMaxEntries = 64
	// subsumeMaxSet bounds the conjunct count of a stored entry; huge
	// sets make subset scans expensive and rarely recur.
	subsumeMaxSet = 512
	// subsumeMaxDepth bounds the constraint-set depth for which the
	// sorted hash key is built at all.
	subsumeMaxDepth = 2048
)

// queryKey is the subsumption key of one query: sorted conjunct hashes
// of the constraint set (base) and of the condition (extra). full is
// the merged union, built lazily when a cross-set comparison needs it.
type queryKey struct {
	base  []uint64
	extra []uint64
	full  []uint64
}

func (k *queryKey) size() int { return len(k.base) + len(k.extra) }

// merged returns the sorted union of base and extra, caching it.
func (k *queryKey) merged() []uint64 {
	if k.full != nil {
		return k.full
	}
	if len(k.extra) == 0 {
		k.full = k.base
		return k.full
	}
	out := make([]uint64, 0, len(k.base)+len(k.extra))
	i, j := 0, 0
	for i < len(k.base) && j < len(k.extra) {
		if k.base[i] <= k.extra[j] {
			out = append(out, k.base[i])
			i++
		} else {
			out = append(out, k.extra[j])
			j++
		}
	}
	out = append(out, k.base[i:]...)
	out = append(out, k.extra[j:]...)
	k.full = out
	return out
}

// sameSlice reports whether a and b are the identical backing slice
// (the shared per-set sorted-hash key).
func sameSlice(a, b []uint64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// containsSorted reports whether sorted hs contains h (binary search).
func containsSorted(hs []uint64, h uint64) bool {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(hs) && hs[lo] == h
}

// subsetOf reports a ⊆ b for sorted hash multisets (full merge walk;
// the cross-set slow path).
func subsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, h := range a {
		for j < len(b) && b[j] < h {
			j++
		}
		if j >= len(b) || b[j] != h {
			return false
		}
		j++
	}
	return true
}

// keySubset reports a ⊆ b. When the two keys share their base slice,
// only a's extras need membership checks in b; otherwise it falls back
// to the merged-set walk behind cheap size/bounds filters.
func keySubset(a, b *queryKey) bool {
	if a.size() > b.size() {
		return false
	}
	if sameSlice(a.base, b.base) {
		for _, h := range a.extra {
			if !containsSorted(b.extra, h) && !containsSorted(b.base, h) {
				return false
			}
		}
		return true
	}
	am, bm := a.merged(), b.merged()
	if len(am) > 0 && (am[0] < bm[0] || am[len(am)-1] > bm[len(bm)-1]) {
		return false // some element of a is outside b's range
	}
	return subsetOf(am, bm)
}

type subsumeEntry struct {
	key   queryKey
	model expr.Assignment
}

// subsumeCache holds the bounded unsat-core and sat-model entries.
type subsumeCache struct {
	unsat []subsumeEntry // stored sets known unsat
	sat   []subsumeEntry // stored sets known sat, with witness models
}

// hitUnsat reports whether some stored unsat set is a subset of the
// query set (⟹ the query is unsat).
func (c *subsumeCache) hitUnsat(q *queryKey) bool {
	for i := range c.unsat {
		if keySubset(&c.unsat[i].key, q) {
			return true
		}
	}
	return false
}

// hitSat returns a witness model when the query set is a subset of some
// stored sat set (⟹ the query is sat, witnessed by that set's model).
func (c *subsumeCache) hitSat(q *queryKey) (expr.Assignment, bool) {
	for i := range c.sat {
		if keySubset(q, &c.sat[i].key) {
			return c.sat[i].model, true
		}
	}
	return nil, false
}

func (c *subsumeCache) addUnsat(q *queryKey) {
	if q == nil || q.size() == 0 || q.size() > subsumeMaxSet {
		return
	}
	c.unsat = addEntry(c.unsat, subsumeEntry{key: *q})
}

func (c *subsumeCache) addSat(q *queryKey, model expr.Assignment) {
	if q == nil || q.size() == 0 || q.size() > subsumeMaxSet {
		return
	}
	c.sat = addEntry(c.sat, subsumeEntry{key: *q, model: model})
}

func addEntry(list []subsumeEntry, e subsumeEntry) []subsumeEntry {
	if len(list) >= subsumeMaxEntries {
		copy(list, list[1:])
		list = list[:len(list)-1]
	}
	return append(list, e)
}
