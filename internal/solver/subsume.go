package solver

// Counterexample/model subsumption cache (KLEE-style, the paper's §6
// "Constraint Caches"). Queries are keyed by the sorted multiset of
// their conjunct hashes (O(1) per conjunct — expressions are
// hash-consed), which makes two set-theoretic deductions cheap:
//
//   - a query whose conjunct set is a SUPERSET of a known-unsat set is
//     unsat without solving (adding constraints cannot revive an
//     unsatisfiable core), and
//   - a query whose conjunct set is a SUBSET of a known-sat set is sat,
//     and the stored model witnesses it (dropping constraints cannot
//     invalidate a model).
//
// Keys are kept split as (base, extra): the sorted hashes of the
// constraint set itself — a slice shared identity-intact across every
// query against that set — plus the few sorted hashes of the query
// condition. Entries whose base is the *same slice* as the query's
// (the dominant case: many branch queries against one path condition)
// are decided by comparing only the extras, O(|extra| · log N); the
// full sorted-merge subset walk runs only for cross-set pairs, behind
// an O(1) bounds pre-filter. Entries are bounded FIFO lists.
//
// Two indexes answer lookups without scanning the lists: a per-base
// bucket (entries sharing one base slice, keyed by their out-of-base
// extra hashes) serving the dominant same-base pattern in O(|extra|),
// and — on the unsat side — a UBTree set-trie over merged keys for
// cross-set containment (a core learned on a shallow set subsumes
// queries on every descendant set; the anySubset walk descends only on
// exact label matches, so even misses are cheap). The sat side is
// bucket-only: its trie direction (find a stored superset) must
// speculatively descend every label not past the query's next element,
// which degenerates to the full visit budget per miss when stored keys
// share long prefixes — exactly the same-base pattern — and a
// cross-base sat superset would have to restate the entire base under
// a different state, a case too rare to pay that walk (or the trie's
// per-entry insertion cost) for.

import "cloud9/internal/expr"

const (
	// subsumeMaxEntries bounds each FIFO side of the cache. Large now
	// that lookups are indexed (see ubNode) instead of linear.
	subsumeMaxEntries = 1024
	// subsumeMaxSet bounds the conjunct count of a stored entry; huge
	// sets make subset scans expensive and rarely recur.
	subsumeMaxSet = 512
	// subsumeMaxDepth bounds the constraint-set depth for which the
	// sorted hash key is built at all.
	subsumeMaxDepth = 2048
	// subsumeLinearMax: at or below this many entries, lookups scan the
	// list directly — the shared-base-slice fast path in keySubset makes
	// small scans cheaper than walking the trie and merging the query
	// key (the scan was nearly half the branch-query profile before the
	// split keys landed; the fast path must survive for small caches).
	subsumeLinearMax = 16
	// ubVisitBudget caps trie nodes visited per indexed lookup; an
	// exhausted budget is a cache miss, never a wrong answer.
	ubVisitBudget = 4096
)

// queryKey is the subsumption key of one query: sorted conjunct hashes
// of the constraint set (base) and of the condition (extra). full is
// the merged union, built lazily when a cross-set comparison needs it.
type queryKey struct {
	base  []uint64
	extra []uint64
	full  []uint64
}

func (k *queryKey) size() int { return len(k.base) + len(k.extra) }

// merged returns the sorted union of base and extra, caching it.
func (k *queryKey) merged() []uint64 {
	if k.full != nil {
		return k.full
	}
	if len(k.extra) == 0 {
		k.full = k.base
		return k.full
	}
	out := make([]uint64, 0, len(k.base)+len(k.extra))
	i, j := 0, 0
	for i < len(k.base) && j < len(k.extra) {
		if k.base[i] <= k.extra[j] {
			out = append(out, k.base[i])
			i++
		} else {
			out = append(out, k.extra[j])
			j++
		}
	}
	out = append(out, k.base[i:]...)
	out = append(out, k.extra[j:]...)
	k.full = out
	return out
}

// sameSlice reports whether a and b are the identical backing slice
// (the shared per-set sorted-hash key).
func sameSlice(a, b []uint64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// containsSorted reports whether sorted hs contains h (binary search).
func containsSorted(hs []uint64, h uint64) bool {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(hs) && hs[lo] == h
}

// subsetOf reports a ⊆ b for sorted hash multisets (full merge walk;
// the cross-set slow path).
func subsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, h := range a {
		for j < len(b) && b[j] < h {
			j++
		}
		if j >= len(b) || b[j] != h {
			return false
		}
		j++
	}
	return true
}

// keySubset reports a ⊆ b. When the two keys share their base slice,
// only a's extras need membership checks in b; otherwise it falls back
// to the merged-set walk behind cheap size/bounds filters.
func keySubset(a, b *queryKey) bool {
	if a.size() > b.size() {
		return false
	}
	if sameSlice(a.base, b.base) {
		for _, h := range a.extra {
			if !containsSorted(b.extra, h) && !containsSorted(b.base, h) {
				return false
			}
		}
		return true
	}
	am, bm := a.merged(), b.merged()
	if len(am) > 0 && (am[0] < bm[0] || am[len(am)-1] > bm[len(bm)-1]) {
		return false // some element of a is outside b's range
	}
	return subsetOf(am, bm)
}

type subsumeEntry struct {
	key   queryKey
	model expr.Assignment
}

// baseID identifies a base slice by identity. Per-state sorted-hash
// slices are built once and shared by every query against that state,
// so identity equality is exactly "same constraint set".
type baseID struct {
	p *uint64
	n int
}

func baseIDOf(b []uint64) baseID {
	if len(b) == 0 {
		return baseID{}
	}
	return baseID{&b[0], len(b)}
}

// baseBucket indexes one base slice's entries. inBase lists entries
// whose every extra folds into the base (their key set is ⊆ base);
// byExtra lists entries under each extra hash outside the base.
type baseBucket struct {
	all     []int
	inBase  []int
	byExtra map[uint64][]int
}

func removeSlot(s []int, slot int) []int {
	for i, v := range s {
		if v == slot {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// ubNode is one node of a UBTree (Hoffmann & Koehler's unlimited-branching
// set-trie): stored keys — sorted hash multisets — are trie paths whose
// elements are nondecreasing along the path, so both set-containment
// directions become pruned trie walks instead of per-entry scans.
// ends lists the ring slots of entries whose key terminates at this
// node; size counts terminators in the whole subtree (empty subtrees are
// pruned on removal, so every live node has size > 0).
type ubNode struct {
	h    uint64
	kids []*ubNode // sorted by h
	ends []int
	size int
}

// findKid locates the child labeled h (binary search over the sorted
// kid list), returning its index or the insertion point.
func (n *ubNode) findKid(h uint64) (int, bool) {
	lo, hi := 0, len(n.kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.kids[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.kids) && n.kids[lo].h == h
}

func (n *ubNode) insert(key []uint64, id int) {
	n.size++
	if len(key) == 0 {
		n.ends = append(n.ends, id)
		return
	}
	i, ok := n.findKid(key[0])
	if !ok {
		n.kids = append(n.kids, nil)
		copy(n.kids[i+1:], n.kids[i:])
		n.kids[i] = &ubNode{h: key[0]}
	}
	n.kids[i].insert(key[1:], id)
}

func (n *ubNode) remove(key []uint64, id int) {
	n.size--
	if len(key) == 0 {
		for i, e := range n.ends {
			if e == id {
				n.ends = append(n.ends[:i], n.ends[i+1:]...)
				break
			}
		}
		return
	}
	i, ok := n.findKid(key[0])
	if !ok {
		return // defensive: removals mirror prior insertions
	}
	kid := n.kids[i]
	kid.remove(key[1:], id)
	if kid.size == 0 {
		n.kids = append(n.kids[:i], n.kids[i+1:]...)
	}
}

// anySubset reports whether some stored key is a subset of q (sorted
// multiset containment). Visited nodes are charged against budget; an
// exhausted budget reports a miss.
func (n *ubNode) anySubset(q []uint64, budget *int) bool {
	*budget--
	if *budget < 0 || n.size == 0 {
		return false
	}
	if len(n.ends) > 0 {
		return true // a whole stored key matched along this path
	}
	// Two-pointer join of the sorted kid labels and the sorted query.
	// Matching the earliest query occurrence of a label is maximal (it
	// leaves the longest query tail for the subtree), so each kid is
	// tried at most once.
	ki, qi := 0, 0
	for ki < len(n.kids) && qi < len(q) {
		switch {
		case n.kids[ki].h < q[qi]:
			ki++
		case n.kids[ki].h > q[qi]:
			qi++
		default:
			if n.kids[ki].anySubset(q[qi+1:], budget) {
				return true
			}
			ki++
		}
	}
	return false
}

// subsumeSide is one direction of the cache: a fixed-capacity ring of
// entries (FIFO eviction, stable slot ids) plus two indexes over them —
// per-base buckets, and (unsat side only) the UBTree over merged keys.
type subsumeSide struct {
	slots  []subsumeEntry
	next   int // oldest slot once the ring is full
	tree   ubNode
	byBase map[baseID]*baseBucket
}

// add stores e, evicting the oldest entry once the ring is full.
// indexTree maintains the UBTree alongside the buckets; the sat side
// passes false (see the package comment).
func (sd *subsumeSide) add(e subsumeEntry, indexTree bool) {
	var slot int
	if len(sd.slots) < subsumeMaxEntries {
		slot = len(sd.slots)
		sd.slots = append(sd.slots, e)
	} else {
		slot = sd.next
		if indexTree {
			sd.tree.remove(sd.slots[slot].key.merged(), slot)
		}
		sd.unbucket(slot)
		sd.slots[slot] = e
		sd.next = (sd.next + 1) % subsumeMaxEntries
	}
	if indexTree {
		sd.tree.insert(sd.slots[slot].key.merged(), slot)
	}
	sd.bucket(slot)
}

func (sd *subsumeSide) bucket(slot int) {
	k := &sd.slots[slot].key
	if sd.byBase == nil {
		sd.byBase = make(map[baseID]*baseBucket)
	}
	id := baseIDOf(k.base)
	b := sd.byBase[id]
	if b == nil {
		b = &baseBucket{}
		sd.byBase[id] = b
	}
	b.all = append(b.all, slot)
	folded := true
	for _, h := range k.extra {
		if !containsSorted(k.base, h) {
			if b.byExtra == nil {
				b.byExtra = make(map[uint64][]int)
			}
			b.byExtra[h] = append(b.byExtra[h], slot)
			folded = false
		}
	}
	if folded {
		b.inBase = append(b.inBase, slot)
	}
}

func (sd *subsumeSide) unbucket(slot int) {
	k := &sd.slots[slot].key
	id := baseIDOf(k.base)
	b := sd.byBase[id]
	if b == nil {
		return // defensive: every live slot was bucketed on add
	}
	b.all = removeSlot(b.all, slot)
	b.inBase = removeSlot(b.inBase, slot)
	for _, h := range k.extra {
		if !containsSorted(k.base, h) {
			if rest := removeSlot(b.byExtra[h], slot); len(rest) > 0 {
				b.byExtra[h] = rest
			} else {
				delete(b.byExtra, h)
			}
		}
	}
	if len(b.all) == 0 {
		delete(sd.byBase, id)
	}
}

// satHitSameBase returns a slot in b whose key contains q (q's base is
// b's base), or -1. q ⊆ stored iff every extra of q outside the shared
// base appears among the stored entry's extras.
func (sd *subsumeSide) satHitSameBase(b *baseBucket, q *queryKey) int {
	first, hasFirst := uint64(0), false
	for _, h := range q.extra {
		if !containsSorted(q.base, h) {
			first, hasFirst = h, true
			break
		}
	}
	if !hasFirst {
		// q folds into the base entirely; any entry over this base
		// contains it.
		if len(b.all) > 0 {
			return b.all[0]
		}
		return -1
	}
outer:
	for _, slot := range b.byExtra[first] {
		se := sd.slots[slot].key.extra
		for _, h := range q.extra {
			if h == first || containsSorted(q.base, h) {
				continue
			}
			if !containsSorted(se, h) {
				continue outer
			}
		}
		return slot
	}
	return -1
}

// unsatHitSameBase reports whether some entry in b is contained in q
// (same base): stored ⊆ q iff every stored extra folds into the base
// or appears among q's extras.
func (sd *subsumeSide) unsatHitSameBase(b *baseBucket, q *queryKey) bool {
	if len(b.inBase) > 0 {
		return true // stored ⊆ base ⊆ q
	}
	for _, h := range q.extra {
		for _, slot := range b.byExtra[h] {
			k := &sd.slots[slot].key
			ok := true
			for _, se := range k.extra {
				if !containsSorted(k.base, se) && !containsSorted(q.extra, se) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// subsumeCache holds the bounded unsat-core and sat-model entries.
type subsumeCache struct {
	unsat subsumeSide // stored sets known unsat
	sat   subsumeSide // stored sets known sat, with witness models
}

// hitUnsat reports whether some stored unsat set is a subset of the
// query set (⟹ the query is unsat). Small caches scan linearly to keep
// the shared-base fast path; larger ones try the query base's bucket,
// then the trie (anySubset only descends on label matches, so a
// cross-base miss stays cheap).
func (c *subsumeCache) hitUnsat(q *queryKey) bool {
	sd := &c.unsat
	if len(sd.slots) <= subsumeLinearMax {
		for i := range sd.slots {
			if keySubset(&sd.slots[i].key, q) {
				return true
			}
		}
		return false
	}
	if b := sd.byBase[baseIDOf(q.base)]; b != nil && sd.unsatHitSameBase(b, q) {
		return true
	}
	budget := ubVisitBudget
	return sd.tree.anySubset(q.merged(), &budget)
}

// hitSat returns a witness model when the query set is a subset of some
// stored sat set (⟹ the query is sat, witnessed by that set's model).
// Past the linear threshold the query base's bucket decides same-base
// containment in O(|extra|); cross-base sat subsumption is not indexed
// (see the package comment).
func (c *subsumeCache) hitSat(q *queryKey) (expr.Assignment, bool) {
	sd := &c.sat
	if len(sd.slots) <= subsumeLinearMax {
		for i := range sd.slots {
			if keySubset(q, &sd.slots[i].key) {
				return sd.slots[i].model, true
			}
		}
		return nil, false
	}
	if b := sd.byBase[baseIDOf(q.base)]; b != nil {
		if slot := sd.satHitSameBase(b, q); slot >= 0 {
			return sd.slots[slot].model, true
		}
	}
	return nil, false
}

func (c *subsumeCache) addUnsat(q *queryKey) {
	if q == nil || q.size() == 0 || q.size() > subsumeMaxSet {
		return
	}
	c.unsat.add(subsumeEntry{key: *q}, true)
}

func (c *subsumeCache) addSat(q *queryKey, model expr.Assignment) {
	if q == nil || q.size() == 0 || q.size() > subsumeMaxSet {
		return
	}
	c.sat.add(subsumeEntry{key: *q, model: model}, false)
}
