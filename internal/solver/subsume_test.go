package solver

import (
	"math/rand"
	"testing"

	"cloud9/internal/expr"
)

// randomSortedKey draws a sorted hash multiset from a small alphabet so
// subset/superset relations actually occur.
func randomSortedKey(rng *rand.Rand, alphabet []uint64) []uint64 {
	n := 1 + rng.Intn(6)
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, alphabet[rng.Intn(len(alphabet))])
	}
	// insertion sort; keys are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// bruteSubsetOf is the multiset-containment oracle for the trie tests.
func bruteSubsetOf(a, b []uint64) bool { return subsetOf(a, b) }

// The UBTree lookups must agree with a brute-force scan over the live
// ring slots on every query — including after evictions have removed
// and re-inserted slots.
func TestUBTreeDifferentialVsLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := make([]uint64, 12)
	for i := range alphabet {
		alphabet[i] = rng.Uint64()
	}

	var sd subsumeSide
	// 3x capacity inserts: the last 2x exercise eviction (trie removal +
	// slot reuse).
	for i := 0; i < 3*subsumeMaxEntries; i++ {
		key := randomSortedKey(rng, alphabet)
		sd.add(subsumeEntry{key: queryKey{base: key}}, true)

		if i%37 != 0 {
			continue
		}
		q := randomSortedKey(rng, alphabet)

		// anySubset: some stored ⊆ q?
		budget := ubVisitBudget
		got := sd.tree.anySubset(q, &budget)
		want := false
		for s := range sd.slots {
			if bruteSubsetOf(sd.slots[s].key.merged(), q) {
				want = true
				break
			}
		}
		if got != want && budget >= 0 {
			t.Fatalf("anySubset(%v) = %v, brute force = %v (insert %d)", q, got, want, i)
		}
	}
	if sd.tree.size != subsumeMaxEntries {
		t.Fatalf("trie size %d after churn, want ring capacity %d", sd.tree.size, subsumeMaxEntries)
	}
	if len(sd.slots) != subsumeMaxEntries {
		t.Fatalf("ring holds %d slots, want %d", len(sd.slots), subsumeMaxEntries)
	}
}

// The per-base bucket index must agree with a brute-force keySubset
// scan in both directions — same-base hits found, everything else
// (different base slice, missing extras) left to the other tiers —
// including across evictions that remove bucketed slots.
func TestSubsumeBucketDifferentialVsLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// A handful of distinct base slices standing in for per-state
	// sorted-hash keys, plus a small extra alphabet so extras collide.
	bases := make([][]uint64, 5)
	for i := range bases {
		bases[i] = randomSortedKey(rng, []uint64{3, 7, 12, 25, 31, 44, 59})
	}
	extras := []uint64{2, 7, 13, 25, 40, 61}

	randKey := func() queryKey {
		k := queryKey{base: bases[rng.Intn(len(bases))]}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			k.extra = append(k.extra, extras[rng.Intn(len(extras))])
		}
		for i := 1; i < len(k.extra); i++ {
			for j := i; j > 0 && k.extra[j] < k.extra[j-1]; j-- {
				k.extra[j], k.extra[j-1] = k.extra[j-1], k.extra[j]
			}
		}
		return k
	}

	var sd subsumeSide
	for i := 0; i < 3*subsumeMaxEntries; i++ {
		sd.add(subsumeEntry{key: randKey()}, false)
		if i%23 != 0 {
			continue
		}
		q := randKey()
		b := sd.byBase[baseIDOf(q.base)]

		// Brute-force oracle for same-base set containment: a ⊆ b iff
		// every extra of a folds into the shared base or appears among
		// b's extras (conjunct sets — duplicates are idempotent).
		contained := func(a, bk *queryKey) bool {
			for _, h := range a.extra {
				if !containsSorted(a.base, h) && !containsSorted(bk.extra, h) {
					return false
				}
			}
			return true
		}

		// Sat direction: q ⊆ stored, same base only.
		got := -1
		if b != nil {
			got = sd.satHitSameBase(b, &q)
		}
		want := false
		for s := range sd.slots {
			if sameSlice(sd.slots[s].key.base, q.base) && contained(&q, &sd.slots[s].key) {
				want = true
				break
			}
		}
		if (got >= 0) != want {
			t.Fatalf("satHitSameBase = %d, brute force = %v (insert %d, q=%+v)", got, want, i, q)
		}
		if got >= 0 && !contained(&q, &sd.slots[got].key) {
			t.Fatalf("satHitSameBase returned slot %d whose key does not contain q", got)
		}

		// Unsat direction: stored ⊆ q, same base only.
		gotU := b != nil && sd.unsatHitSameBase(b, &q)
		wantU := false
		for s := range sd.slots {
			if sameSlice(sd.slots[s].key.base, q.base) && contained(&sd.slots[s].key, &q) {
				wantU = true
				break
			}
		}
		if gotU != wantU {
			t.Fatalf("unsatHitSameBase = %v, brute force = %v (insert %d, q=%+v)", gotU, wantU, i, q)
		}
	}
	// Every live slot is reachable through its bucket; counts reconcile.
	total := 0
	for _, b := range sd.byBase {
		total += len(b.all)
	}
	if total != len(sd.slots) {
		t.Fatalf("buckets index %d slots, ring holds %d", total, len(sd.slots))
	}
}

// End-to-end: once the cache has grown past the linear threshold, a
// subsumption hit must still be found — i.e. hitUnsat really consults
// the trie and finds the stored core.
func TestSubsumptionHitsThroughTrieIndex(t *testing.T) {
	s := New()
	// Seed an interval-opaque unsat core: sum ≡ 10 ∧ sum ≡ 20.
	cs := EmptySet.Append(expr.Eq(c8(10), expr.Add(v(0), v(1))))
	cond := expr.Eq(c8(20), expr.Add(v(0), v(1)))
	if sat, err := s.MayBeTrue(cs, cond); err != nil || sat {
		t.Fatalf("seed query should be unsat: %v %v", sat, err)
	}
	// Push the unsat side well past subsumeLinearMax with unrelated
	// cores (distinct variable pairs, same shape).
	for i := uint64(0); i < 3*subsumeLinearMax; i++ {
		a, b := v(100+2*i), v(101+2*i)
		csi := EmptySet.Append(expr.Eq(c8(10), expr.Add(a, b)))
		condi := expr.Eq(c8(20), expr.Add(a, b))
		if sat, err := s.MayBeTrue(csi, condi); err != nil || sat {
			t.Fatalf("filler query %d should be unsat: %v %v", i, sat, err)
		}
	}
	if got := len(s.subsume.unsat.slots); got <= subsumeLinearMax {
		t.Fatalf("unsat side holds %d entries, want > %d to exercise the trie", got, subsumeLinearMax)
	}
	// A superset of the first core, on a fresh chain (different result-
	// cache key, different base slice — only subsumption can answer it
	// without a search).
	cs2 := EmptySet.
		Append(expr.Eq(c8(10), expr.Add(v(0), v(1)))).
		Append(expr.Ult(c8(200), v(9)))
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs2, cond)
	if err != nil || sat {
		t.Fatalf("superset query should be unsat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.SubsumeUnsat != before.SubsumeUnsat+1 {
		t.Errorf("expected a trie-indexed subsumption hit: %+v -> %+v", before, after)
	}
	if after.SolverRuns != before.SolverRuns {
		t.Errorf("subsumption hit should not run a group search: %+v -> %+v", before, after)
	}
}
