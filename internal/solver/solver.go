package solver

import (
	"errors"
	"sort"
	"sync/atomic"

	"cloud9/internal/expr"
)

// ErrBudget is returned when the backtracking search exceeds the solver's
// backtrack budget (the analog of an SMT solver timeout). Callers should
// treat the query result as unknown.
var ErrBudget = errors.New("solver: backtrack budget exceeded")

// Stats counts solver activity. Fields are updated atomically; read them
// with Snapshot for a consistent view.
type Stats struct {
	Queries        uint64 // top-level satisfiability queries
	CacheHits      uint64 // answered from the result cache
	ModelReuse     uint64 // answered by evaluating a known witness model
	GroupCacheHits uint64 // independent groups answered from the group cache
	SubsumeUnsat   uint64 // answered unsat by superset-of-unsat-core reasoning
	SubsumeSat     uint64 // answered sat by subset-of-known-sat reasoning
	ForkQueries    uint64 // fused branch queries (Fork)
	ForkFastHits   uint64 // Fork directions decided by parent-model evaluation
	StateHits      uint64 // constraint-set states answered from the memo table
	StateExtends   uint64 // incremental state extensions performed
	SolverRuns     uint64 // group searches actually executed
	Backtracks     uint64 // value choices undone
	Unsat          uint64 // queries found unsatisfiable
	UnitPropFolds  uint64 // constraints discharged by unit propagation

	// Interval-abstraction tier (interval.go).
	IntervalSat      uint64 // queries answered sat: cond true on the whole interval box
	IntervalUnsat    uint64 // queries answered unsat: cond false on the whole interval box
	IntervalEmpty    uint64 // extensions proven unsat by an empty interval
	ForkIntervalHits uint64 // Forks with both directions decided by intervals
	IntervalSeeds    uint64 // group searches started from interval-narrowed domains
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Queries:        atomic.LoadUint64(&s.Queries),
		CacheHits:      atomic.LoadUint64(&s.CacheHits),
		ModelReuse:     atomic.LoadUint64(&s.ModelReuse),
		GroupCacheHits: atomic.LoadUint64(&s.GroupCacheHits),
		SubsumeUnsat:   atomic.LoadUint64(&s.SubsumeUnsat),
		SubsumeSat:     atomic.LoadUint64(&s.SubsumeSat),
		ForkQueries:    atomic.LoadUint64(&s.ForkQueries),
		ForkFastHits:   atomic.LoadUint64(&s.ForkFastHits),
		StateHits:      atomic.LoadUint64(&s.StateHits),
		StateExtends:   atomic.LoadUint64(&s.StateExtends),
		SolverRuns:     atomic.LoadUint64(&s.SolverRuns),
		Backtracks:     atomic.LoadUint64(&s.Backtracks),
		Unsat:          atomic.LoadUint64(&s.Unsat),
		UnitPropFolds:  atomic.LoadUint64(&s.UnitPropFolds),

		IntervalSat:      atomic.LoadUint64(&s.IntervalSat),
		IntervalUnsat:    atomic.LoadUint64(&s.IntervalUnsat),
		IntervalEmpty:    atomic.LoadUint64(&s.IntervalEmpty),
		ForkIntervalHits: atomic.LoadUint64(&s.ForkIntervalHits),
		IntervalSeeds:    atomic.LoadUint64(&s.IntervalSeeds),
	}
}

type cacheEntry struct {
	sat bool
	// budget marks an ErrBudget outcome; budgetAt records the
	// MaxBacktracks value the query exceeded. The entry only answers
	// ErrBudget while the current budget is no larger; raising the
	// budget invalidates it, so a once-too-hard query is retried
	// instead of failing forever.
	budget   bool
	budgetAt uint64
	model    expr.Assignment
}

// Solver answers satisfiability queries over constraint sets. It is not
// safe for concurrent use; each worker owns one Solver (matching the
// shared-nothing cluster design — caches are per worker and are *not*
// shipped with job transfers, as in the paper §6 "Constraint Caches").
type Solver struct {
	// MaxBacktracks bounds the search effort per independent group.
	MaxBacktracks uint64
	// Stats accumulates counters across queries.
	Stats Stats

	cache     map[uint64]cacheEntry
	cacheKeys []uint64 // FIFO eviction order
	maxCache  int

	// groupCache memoizes solveGroup outcomes keyed by an
	// order-insensitive hash of the group's constraints. Path conditions
	// grow incrementally, so most groups recur verbatim across queries.
	groupCache     map[uint64]groupResult
	groupCacheKeys []uint64

	// states memoizes the per-ConstraintSet solve state (flattened,
	// unit-propagated, partitioned — see incremental.go), keyed by node
	// identity. Append extends the parent's state instead of redoing
	// the whole pipeline.
	states    map[*ConstraintSet]*setState
	stateKeys []*ConstraintSet
	maxStates int
	empty     *setState // per-solver empty-set state (lazily stamped)

	// subsume is the counterexample/model subsumption cache
	// (subsume.go), keyed on sorted conjunct-hash sets.
	subsume subsumeCache

	// Reusable scratch buffers for the hot paths (extend pools,
	// partition union-find, group var lists, forward-checking domain
	// snapshots). The solver is single-owner, so sharing is safe.
	poolScratch  []*expr.Expr
	poolScratch2 []*expr.Expr
	chainScratch []*ConstraintSet
	groupScratch []*igroup
	idScratch    []uint64
	saveStack    []savedDom
	part         partitioner
}

type groupResult struct {
	sat bool
	// narrowed marks a result found by an interval-seeded search. The
	// verdict is exact either way (the seed bounds are implied by the
	// group's own constraints, so no group solution is excluded), but
	// the model may differ from the canonical unseeded one — full-model
	// queries must not adopt it (§6 broken replays). An unseeded search
	// later overwrites the entry with the canonical result.
	narrowed bool
	model    []groupBinding
}

type groupBinding struct {
	id uint64
	v  uint8
}

// New returns a solver with default budgets.
func New() *Solver {
	return &Solver{
		MaxBacktracks: 1 << 16,
		cache:         make(map[uint64]cacheEntry),
		maxCache:      1 << 16,
		groupCache:    make(map[uint64]groupResult),
		states:        make(map[*ConstraintSet]*setState),
		maxStates:     1 << 15,
		empty:         &setState{},
	}
}

// MayBeTrue reports whether cs ∧ cond is satisfiable.
func (s *Solver) MayBeTrue(cs *ConstraintSet, cond *expr.Expr) (bool, error) {
	sat, _, err := s.check(cs, cond, false)
	return sat, err
}

// MustBeTrue reports whether cond holds on every solution of cs.
func (s *Solver) MustBeTrue(cs *ConstraintSet, cond *expr.Expr) (bool, error) {
	sat, _, err := s.check(cs, expr.Not(cond), false)
	return !sat, err
}

// CheckSat reports whether cs itself is satisfiable.
func (s *Solver) CheckSat(cs *ConstraintSet) (bool, error) {
	sat, _, err := s.check(cs, nil, false)
	return sat, err
}

// Solve returns a full model of cs (every referenced variable bound).
// ok=false means unsatisfiable.
func (s *Solver) Solve(cs *ConstraintSet) (expr.Assignment, bool, error) {
	sat, model, err := s.check(cs, nil, true)
	return model, sat, err
}

// SolveWith returns a model of cs ∧ cond.
func (s *Solver) SolveWith(cs *ConstraintSet, cond *expr.Expr) (expr.Assignment, bool, error) {
	sat, model, err := s.check(cs, cond, true)
	return model, sat, err
}

// Fork is the fused branch query: it decides both directions of a
// branch on cond in one pass. The parent set's cached witness model is
// evaluated first — one evaluation decides one direction for free (the
// model is a satisfiability witness for whichever side it lands on) —
// and only the residual direction(s) go through the full query path.
// Branch sites that used to issue two independent full queries
// (cond, ¬cond) now issue at most one.
//
// mayTrue/mayFalse report whether cs ∧ cond / cs ∧ ¬cond are
// satisfiable; both false means the state itself is infeasible.
func (s *Solver) Fork(cs *ConstraintSet, cond *expr.Expr) (mayTrue, mayFalse bool, err error) {
	if cond.IsTrue() {
		return true, false, nil
	}
	if cond.IsFalse() {
		return false, true, nil
	}
	atomic.AddUint64(&s.Stats.ForkQueries, 1)
	st := s.state(cs)
	if st.unsat {
		return false, false, nil
	}
	// Interval tier: a condition decided by the set's bounds settles BOTH
	// directions in one evaluation. cond true on the whole interval box
	// (which over-approximates cs's solutions) means cs ∧ ¬cond is unsat,
	// and cs ∧ cond is sat by the exploration invariant (cs is
	// satisfiable on feasible paths); symmetrically for false. No cache,
	// no extension, no search — not even the residual-direction query the
	// model fast path below still issues.
	if decided, truth := condDecided(cond, st.bounds); decided {
		atomic.AddUint64(&s.Stats.ForkIntervalHits, 1)
		return truth, !truth, nil
	}
	decidedT, decidedF := false, false
	if m := st.model; m != nil {
		if v, ok := cond.Eval(m); ok {
			atomic.AddUint64(&s.Stats.ForkFastHits, 1)
			if v != 0 {
				mayTrue, decidedT = true, true
			} else {
				mayFalse, decidedF = true, true
			}
		}
	}
	if !decidedT {
		mayTrue, err = s.MayBeTrue(cs, cond)
		if err != nil {
			return false, false, err
		}
	}
	if !decidedF {
		mayFalse, err = s.MayBeTrue(cs, expr.Not(cond))
		if err != nil {
			return false, false, err
		}
	}
	return mayTrue, mayFalse, nil
}

// check is the core query path: derive (incrementally) the memoized
// solve state of cs, extend it with cond, and decide satisfiability,
// consulting the result, model, subsumption and group caches on the
// way. When fullModel is false and cond is non-nil, only groups sharing
// variables with cond are searched (KLEE's independent-constraint
// optimization — sound because execution states only exist on feasible
// paths, so the untouched groups are satisfiable on their own).
func (s *Solver) check(cs *ConstraintSet, cond *expr.Expr, fullModel bool) (bool, expr.Assignment, error) {
	atomic.AddUint64(&s.Stats.Queries, 1)

	if cond != nil && cond.IsFalse() {
		atomic.AddUint64(&s.Stats.Unsat, 1)
		return false, nil, nil
	}
	key := cs.Hash()
	if cond != nil {
		key = key*0x9e3779b97f4a7c15 ^ cond.Hash()
	}
	if fullModel {
		key ^= 0xf00d
	}
	if e, ok := s.cache[key]; ok {
		if e.budget {
			if s.MaxBacktracks <= e.budgetAt {
				atomic.AddUint64(&s.Stats.CacheHits, 1)
				return false, nil, ErrBudget
			}
			// The budget was raised since this entry was recorded:
			// fall through and retry the query.
		} else {
			atomic.AddUint64(&s.Stats.CacheHits, 1)
			if !e.sat {
				atomic.AddUint64(&s.Stats.Unsat, 1)
			}
			return e.sat, e.model, nil
		}
	}

	st := s.state(cs)

	// Tier 1 — interval abstraction: a condition decided by the set's
	// per-variable bounds is answered with zero search, before the
	// condition is even folded into an extension. Unsat is unconditional
	// (the bounds over-approximate cs's solutions); sat additionally
	// relies on the exploration invariant (cs itself is satisfiable on
	// feasible paths), so like the other fast paths it is reserved for
	// may-queries — full-model answers must stay canonical.
	if cond != nil && !fullModel && !st.unsat {
		if decided, truth := condDecided(cond, st.bounds); decided {
			if truth {
				atomic.AddUint64(&s.Stats.IntervalSat, 1)
				s.put(key, cacheEntry{sat: true})
				return true, nil, nil
			}
			atomic.AddUint64(&s.Stats.IntervalUnsat, 1)
			atomic.AddUint64(&s.Stats.Unsat, 1)
			s.put(key, cacheEntry{sat: false})
			return false, nil, nil
		}
	}

	ext := st
	if cond != nil {
		ext = s.extend(st, cond)
	}

	var qk *queryKey // subsumption key of cs ∧ cond (lazy)
	if ext.unsat {
		atomic.AddUint64(&s.Stats.Unsat, 1)
		s.put(key, cacheEntry{sat: false})
		s.subsume.addUnsat(s.queryKeyFor(cs, st, cond))
		return false, nil, nil
	}

	// Fast paths. Skipped for full-model queries: their results feed
	// concretization decisions that must be deterministic functions of
	// the constraint set alone, or replays diverge across workers
	// (§6 "Broken Replays").
	if !fullModel {
		if m := st.model; m != nil && condHolds(cond, m) {
			atomic.AddUint64(&s.Stats.ModelReuse, 1)
			s.put(key, cacheEntry{sat: true, model: m})
			return true, m, nil
		}
		qk = s.queryKeyFor(cs, st, cond)
		if qk != nil {
			if s.subsume.hitUnsat(qk) {
				atomic.AddUint64(&s.Stats.SubsumeUnsat, 1)
				atomic.AddUint64(&s.Stats.Unsat, 1)
				s.put(key, cacheEntry{sat: false})
				return false, nil, nil
			}
			if m, ok := s.subsume.hitSat(qk); ok {
				atomic.AddUint64(&s.Stats.SubsumeSat, 1)
				s.put(key, cacheEntry{sat: true, model: m})
				return true, m, nil
			}
		}
	}

	// Solve: units first, then each (relevant) independent group. For
	// may-queries only the groups the cond extension rewrote or created
	// are solved: an inherited group is a group of cs itself, and cs is
	// satisfiable on feasible paths, so it is satisfiable on its own
	// (KLEE's independent-constraint optimization). A group dissolved
	// and re-formed by cond-derived unit bindings is NOT a group of cs
	// — skipping it on the strength of the invariant would miss
	// contradictions the new units introduced, so rewritten groups are
	// always solved even when substitution severed them from cond's
	// variables.
	model := make(expr.Assignment, len(ext.units)+8)
	for id, v := range ext.units {
		model[id] = v
	}
	// Tier 3 seeding: may-query searches start from interval-narrowed
	// domains instead of full 256-value ones. Full-model queries search
	// unseeded — their models feed concretization and must stay a
	// deterministic function of the constraint set alone.
	var seedB boundsMap
	if !fullModel {
		seedB = ext.bounds
	}
	skipInherited := cond != nil && !fullModel
	inherited := 0 // two-pointer subsequence match against st.groups
	sat := true
	for _, g := range ext.groups {
		if skipInherited {
			shared := false
			for inherited < len(st.groups) {
				match := st.groups[inherited] == g
				inherited++
				if match {
					shared = true
					break
				}
			}
			if shared {
				continue // a group of cs itself; satisfiable on its own
			}
		}
		// Narrowed entries carry exact verdicts but non-canonical
		// models: full-model queries may take their unsat answer, never
		// their model (they fall through to an unseeded search, which
		// overwrites the entry with the canonical result).
		if res, hit := s.groupCache[g.key]; hit && !(fullModel && res.narrowed && res.sat) {
			atomic.AddUint64(&s.Stats.GroupCacheHits, 1)
			if !res.sat {
				sat = false
				break
			}
			conflict := false
			for _, b := range res.model {
				if prev, bound := model[b.id]; bound && prev != b.v {
					conflict = true
					break
				}
			}
			if !conflict {
				for _, b := range res.model {
					model[b.id] = b.v
				}
				continue
			}
			// Cached model conflicts with an outside binding
			// (defensive; groups are variable-disjoint from units by
			// construction): fall through to a fresh search.
		}
		gids := g.vars.AppendIDs(s.idScratch[:0])
		allFree := true
		for _, id := range gids {
			if _, bound := model[id]; bound {
				allFree = false
				break
			}
		}
		ok, narrowed, err := s.solveGroup(g.cons, gids, model, seedB)
		s.idScratch = gids[:0]
		if err != nil {
			if errors.Is(err, ErrBudget) {
				s.put(key, cacheEntry{budget: true, budgetAt: s.MaxBacktracks})
			}
			return false, nil, err
		}
		if narrowed {
			atomic.AddUint64(&s.Stats.IntervalSeeds, 1)
		}
		// Cache only groups whose variables were entirely free, so the
		// result does not depend on outside bindings. Seeded results are
		// stored flagged (see groupResult.narrowed); canonical unseeded
		// results overwrite them.
		if allFree {
			res := groupResult{sat: ok, narrowed: narrowed}
			if ok {
				for _, id := range gids {
					res.model = append(res.model, groupBinding{id, model[id]})
				}
			}
			s.putGroup(g.key, res)
		}
		if !ok {
			sat = false
			break
		}
	}
	if !sat {
		atomic.AddUint64(&s.Stats.Unsat, 1)
		s.put(key, cacheEntry{sat: false})
		if qk == nil {
			qk = s.queryKeyFor(cs, st, cond)
		}
		s.subsume.addUnsat(qk)
		return false, nil, nil
	}
	if fullModel {
		// Bind any variable mentioned anywhere but left unconstrained.
		for _, g := range ext.groups {
			gids := g.vars.AppendIDs(s.idScratch[:0])
			for _, id := range gids {
				if _, ok := model[id]; !ok {
					model[id] = 0
				}
			}
			s.idScratch = gids[:0]
		}
		// A constraint can fold away entirely under unit substitution
		// (e.g. a disjunction discharged by one arm), dropping its
		// remaining variables from every group. The fold holds for any
		// value of those variables, so bind them too — concretization
		// needs every referenced byte.
		for _, id := range cs.Vars() {
			if _, ok := model[id]; !ok {
				model[id] = 0
			}
		}
		if cond != nil {
			for _, id := range cond.VarIDs() {
				if _, ok := model[id]; !ok {
					model[id] = 0
				}
			}
		}
	} else {
		if st.model == nil && st != s.empty {
			// The model witnesses cs's units and every group it
			// solved (cond only adds constraints): stamp it on the
			// state so Fork and future queries can evaluate against
			// it instead of searching.
			st.model = model
		}
		s.subsume.addSat(qk, model)
	}
	s.put(key, cacheEntry{sat: true, model: model})
	return true, model, nil
}

// queryKeyFor returns the subsumption key of cs ∧ cond — the set's
// shared sorted-hash slice plus the condition's few sorted hashes — or
// nil when the set is too deep to key cheaply (see subsumeMaxDepth).
func (s *Solver) queryKeyFor(cs *ConstraintSet, st *setState, cond *expr.Expr) *queryKey {
	base, ok := s.hashesFor(cs, st)
	if !ok {
		return nil
	}
	k := &queryKey{base: base}
	if cond != nil {
		ch := appendConjunctHashes(cond, make([]uint64, 0, 4))
		sort.Slice(ch, func(i, j int) bool { return ch[i] < ch[j] })
		k.extra = ch
	}
	return k
}

func condHolds(cond *expr.Expr, m expr.Assignment) bool {
	if cond == nil {
		return true
	}
	v, ok := cond.Eval(m)
	return ok && v != 0
}

// evictHalf implements the bounded-map FIFO policy shared by every
// solver cache: once the map reaches max entries, the oldest half of
// the insertion order is evicted. Returns the compacted key order.
// Simple and allocation-friendly.
func evictHalf[K comparable, V any](m map[K]V, keys []K, max int) []K {
	if len(m) < max {
		return keys
	}
	half := len(keys) / 2
	for _, k := range keys[:half] {
		delete(m, k)
	}
	return append(keys[:0], keys[half:]...)
}

func (s *Solver) put(key uint64, e cacheEntry) {
	s.cacheKeys = evictHalf(s.cache, s.cacheKeys, s.maxCache)
	if _, dup := s.cache[key]; !dup {
		s.cacheKeys = append(s.cacheKeys, key)
	}
	s.cache[key] = e
}

func (s *Solver) putGroup(key uint64, res groupResult) {
	s.groupCacheKeys = evictHalf(s.groupCache, s.groupCacheKeys, s.maxCache)
	if _, dup := s.groupCache[key]; !dup {
		s.groupCacheKeys = append(s.groupCacheKeys, key)
	}
	s.groupCache[key] = res
}

// savedDom is one forward-checking domain snapshot on the shared
// restore stack (solveGroup).
type savedDom struct {
	lv int
	d  domain
}

// solveGroup runs backtracking search with forward checking over one
// independent group (cons over the sorted variable ids), extending
// model in place on success. The search works over a dense slice-backed
// assignment (see expr.EvalSlice) — this is the hot path. Per-
// constraint unbound-variable counts are maintained incrementally on
// bind/unbind, so variable selection and forward checking read O(1)
// counts instead of rescanning every constraint's variable list.
//
// bnds, when non-nil, seeds the unbound variables' domains from the
// interval abstraction (values outside a variable's bounds cannot be
// part of any solution, so dropping them preserves satisfiability and
// every surviving model). narrowed reports whether seeding actually
// removed values — callers must not publish narrowed results to the
// canonical group cache.
func (s *Solver) solveGroup(cons []*expr.Expr, ids []uint64, model expr.Assignment, bnds boundsMap) (sat, narrowed bool, err error) {
	atomic.AddUint64(&s.Stats.SolverRuns, 1)

	maxID := uint64(0)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	for id := range model {
		if id > maxID {
			maxID = id
		}
	}
	if maxID >= 1<<22 {
		return false, false, ErrBudget // pathological id space; treat as unknown
	}
	vals := make([]int16, maxID+1)
	for i := range vals {
		vals[i] = -1
	}
	for id, v := range model {
		vals[id] = int16(v)
	}

	vars := make([]uint64, 0, len(ids))
	for _, id := range ids {
		if vals[id] < 0 {
			vars = append(vars, id)
		}
	}
	if len(vars) == 0 {
		// Everything bound by units; just verify.
		for _, c := range cons {
			v, ok := c.EvalSlice(vals)
			if !ok || v == 0 {
				return false, false, nil
			}
		}
		return true, false, nil
	}

	// Local dense index over the unbound variables.
	li := make(map[uint64]int, len(vars))
	for i, id := range vars {
		li[id] = i
	}
	domains := make([]domain, len(vars))
	for i := range domains {
		domains[i] = fullDomain()
	}
	// Interval seeding: restrict each domain to the variable's bounds.
	// The bounds are non-empty by construction (an empty interval marks
	// the state unsat before any search), so no domain empties here.
	if bnds != nil {
		for i, id := range vars {
			if iv, ok := bnds[id]; ok && (iv.lo > 0 || iv.hi < 255) {
				domains[i].removeOutside(iv.lo, iv.hi)
				narrowed = true
			}
		}
	}

	// Per-constraint bookkeeping: which unbound vars it mentions, and
	// how many of them are currently unbound (cnt, maintained on
	// bind/unbind through varCons, the var → constraints index).
	type conInfo struct {
		c    *expr.Expr
		vars []uint64
		lvs  []int
	}
	infos := make([]conInfo, 0, len(cons))
	cnt := make([]int, 0, len(cons))
	varCons := make([][]int32, len(vars))
	for _, c := range cons {
		ci := conInfo{c: c}
		for _, id := range c.VarIDs() {
			if lv, ok := li[id]; ok {
				ci.vars = append(ci.vars, id)
				ci.lvs = append(ci.lvs, lv)
			}
		}
		idx := int32(len(infos))
		infos = append(infos, ci)
		cnt = append(cnt, len(ci.lvs))
		for _, lv := range ci.lvs {
			varCons[lv] = append(varCons[lv], idx)
		}
	}
	bind := func(lv int) {
		for _, ci := range varCons[lv] {
			cnt[ci]--
		}
	}
	unbind := func(lv int) {
		for _, ci := range varCons[lv] {
			cnt[ci]++
		}
	}
	// firstUnbound returns the one unbound var of a cnt==1 constraint.
	firstUnbound := func(ci *conInfo) (uint64, int) {
		for k, id := range ci.vars {
			if vals[id] < 0 {
				return id, ci.lvs[k]
			}
		}
		return 0, -1 // unreachable when cnt==1
	}

	// pruneUnary restricts var id's domain using constraint c, assuming
	// id is c's only unbound variable. The constraint is first partially
	// evaluated under the current assignment, collapsing everything but
	// the scanned variable; the 256-value scan then runs on the (usually
	// tiny) residual. Returns false if the domain empties.
	pruneUnary := func(c *expr.Expr, id uint64, lv int) bool {
		d := &domains[lv]
		reduced := c.SubstSlice(vals)
		if reduced.IsConst() {
			return reduced.ConstVal() != 0
		}
		v, ok := d.first()
		for ok {
			vals[id] = int16(v)
			ev, evOK := reduced.EvalSlice(vals)
			if !evOK || ev == 0 {
				d.remove(v)
			}
			v, ok = d.next(v)
		}
		vals[id] = -1
		return !d.empty()
	}

	// Initial unary pruning pass.
	for i := range infos {
		switch cnt[i] {
		case 0:
			v, ok := infos[i].c.EvalSlice(vals)
			if !ok || v == 0 {
				return false, narrowed, nil
			}
		case 1:
			id, lv := firstUnbound(&infos[i])
			if !pruneUnary(infos[i].c, id, lv) {
				return false, narrowed, nil
			}
		}
	}

	var backtracks uint64

	// Count how many constraints mention each var, for ordering.
	mentions := make([]int, len(vars))
	for i := range infos {
		for _, lv := range infos[i].lvs {
			mentions[lv]++
		}
	}

	// nearUnary[lv] = the smallest number of unbound variables among
	// constraints mentioning lv (refilled per pick from the maintained
	// counts). Choosing the variable that brings some constraint
	// closest to unary lets forward checking prune as early as
	// possible.
	nearUnary := make([]int, len(vars))
	pickVar := func() (int, bool) {
		for i := range nearUnary {
			nearUnary[i] = 65
		}
		for i := range infos {
			n := cnt[i]
			if n == 0 {
				continue
			}
			ci := &infos[i]
			for k, lv := range ci.lvs {
				if vals[ci.vars[k]] >= 0 {
					continue
				}
				if n < nearUnary[lv] {
					nearUnary[lv] = n
				}
			}
		}
		best, bestScore, found := 0, -1, false
		for lv, id := range vars {
			if vals[id] >= 0 {
				continue
			}
			near := nearUnary[lv]
			if near == 65 {
				near = 64 // mentioned by no active constraint
			}
			// Prefer: constraints nearest unary, then small domains,
			// then high mention counts.
			score := (64-near)*1_000_000 + (256-domains[lv].count())*1000 + mentions[lv]
			if score > bestScore {
				best, bestScore, found = lv, score, true
			}
		}
		return best, found
	}

	// savedMark deduplicates domain snapshots within one value trial;
	// the snapshots themselves live on the shared restore stack
	// (s.saveStack), segmented by recursion level.
	savedMark := make([]uint64, len(vars))
	var trial uint64
	s.saveStack = s.saveStack[:0]

	var solve func() (bool, error)
	solve = func() (bool, error) {
		lv, found := pickVar()
		if !found {
			// All assigned: final verification.
			for i := range infos {
				v, ok := infos[i].c.EvalSlice(vals)
				if !ok || v == 0 {
					return false, nil
				}
			}
			return true, nil
		}
		id := vars[lv]
		d := &domains[lv]
		bind(lv)
		v, ok := d.first()
		for ok {
			vals[id] = int16(v)
			trial++
			base := len(s.saveStack)
			// Forward checking: constraints that now have exactly one
			// unbound var prune that var's domain.
			feasible := true
			for i := range infos {
				switch cnt[i] {
				case 0:
					ev, evOK := infos[i].c.EvalSlice(vals)
					if !evOK || ev == 0 {
						feasible = false
					}
				case 1:
					uid, ulv := firstUnbound(&infos[i])
					if savedMark[ulv] != trial {
						savedMark[ulv] = trial
						s.saveStack = append(s.saveStack, savedDom{ulv, domains[ulv]})
					}
					if !pruneUnary(infos[i].c, uid, ulv) {
						feasible = false
					}
				}
				if !feasible {
					break
				}
			}
			if feasible {
				done, err := solve()
				if err != nil {
					return false, err
				}
				if done {
					return true, nil
				}
			}
			// Restore and try next value.
			for i := len(s.saveStack) - 1; i >= base; i-- {
				sd := s.saveStack[i]
				domains[sd.lv] = sd.d
			}
			s.saveStack = s.saveStack[:base]
			vals[id] = -1
			backtracks++
			if backtracks > s.MaxBacktracks {
				return false, ErrBudget
			}
			v, ok = d.next(v)
		}
		unbind(lv)
		return false, nil
	}

	sat, err = solve()
	atomic.AddUint64(&s.Stats.Backtracks, backtracks)
	if err != nil || !sat {
		return sat, narrowed, err
	}
	for _, id := range vars {
		model[id] = uint8(vals[id])
	}
	return true, narrowed, nil
}

// ---- From-scratch reference pipeline ----
//
// The pre-incremental query path — flatten the whole set, unit-
// propagate to fixpoint, union-find partition, then search — kept as
// the reference implementation. The differential tests check that the
// incremental path above agrees with it on every query, and the CI
// benchmarks measure the incremental speedup against it.

// ReferenceMayBeTrue answers MayBeTrue through the from-scratch
// pipeline, bypassing the incremental state, result, model and
// subsumption caches (the group cache is still consulted, as the
// pre-incremental solver did).
func (s *Solver) ReferenceMayBeTrue(cs *ConstraintSet, cond *expr.Expr) (bool, error) {
	if cond != nil && cond.IsFalse() {
		return false, nil
	}
	cons := cs.Flattened()
	if cond != nil {
		cons = flatten(cond, cons)
	}
	sat, _, err := s.referenceSolve(cons, cond, false)
	return sat, err
}

// ReferenceSolve is Solve through the from-scratch pipeline.
func (s *Solver) ReferenceSolve(cs *ConstraintSet) (expr.Assignment, bool, error) {
	sat, model, err := s.referenceSolve(cs.Flattened(), nil, true)
	if sat && err == nil {
		// Bind variables whose constraints folded away under unit
		// substitution (see the full-model completion in check).
		for _, id := range cs.Vars() {
			if _, ok := model[id]; !ok {
				model[id] = 0
			}
		}
	}
	return model, sat, err
}

// referenceSolve decides a flattened conjunction from scratch.
func (s *Solver) referenceSolve(cons []*expr.Expr, cond *expr.Expr, fullModel bool) (bool, expr.Assignment, error) {
	model := expr.Assignment{}

	// For may-queries, compute the variables transitively connected to
	// cond over the pre-substitution constraint graph. Unit propagation
	// can sever a group from cond's variables by substituting them away
	// — but a group rewritten by cond-derived units is not part of the
	// (feasible, hence satisfiable) base set, so relevance must be
	// judged on the original graph, not the residual one.
	var relevant map[uint64]bool
	if cond != nil && !fullModel {
		relevant = relevantVars(cons, cond)
	}

	// Unit propagation to fixpoint: bind Eq(const, var) facts and
	// substitute them everywhere.
	for {
		progress := false
		units := expr.Assignment{}
		next := cons[:0]
		for _, c := range cons {
			if c.IsTrue() {
				continue
			}
			if c.IsFalse() {
				return false, nil, nil
			}
			if c.Op() == expr.OpLAnd {
				// Substitution may rebuild conjunctions; re-flatten.
				next = flatten(c, next)
				progress = true
				continue
			}
			if c.Op() == expr.OpEq && c.Kid(0).IsConst() && c.Kid(1).IsVar() {
				id := c.Kid(1).VarID()
				v := uint8(c.Kid(0).ConstVal())
				if prev, ok := model[id]; ok && prev != v {
					return false, nil, nil
				}
				if prev, ok := units[id]; ok && prev != v {
					return false, nil, nil
				}
				units[id] = v
				model[id] = v
				progress = true
				continue
			}
			next = append(next, c)
		}
		cons = next
		if !progress {
			break
		}
		bound := units.VarSet() // one summary for the whole round
		for i, c := range cons {
			cons[i] = c.SubstConstsWith(units, bound)
		}
	}

	// Partition remaining constraints into independent groups.
	groups := s.part.partition(cons)

	for _, g := range groups {
		if relevant != nil && !g.touches(relevant) {
			continue // independent of the query; satisfiable on its own
		}
		key := groupHash(g.cons)
		gids := make([]uint64, 0, len(g.vars))
		for id := range g.vars {
			gids = append(gids, id)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		if res, hit := s.groupCache[key]; hit {
			if !res.sat {
				return false, nil, nil
			}
			ok := true
			for _, b := range res.model {
				if prev, bound := model[b.id]; bound && prev != b.v {
					ok = false
					break
				}
			}
			if ok {
				for _, b := range res.model {
					model[b.id] = b.v
				}
				continue
			}
		}
		allFree := true
		for _, id := range gids {
			if _, bound := model[id]; bound {
				allFree = false
				break
			}
		}
		ok, _, err := s.solveGroup(g.cons, gids, model, nil)
		if err != nil {
			return false, nil, err
		}
		if allFree {
			res := groupResult{sat: ok}
			if ok {
				for _, id := range gids {
					res.model = append(res.model, groupBinding{id, model[id]})
				}
			}
			s.putGroup(key, res)
		}
		if !ok {
			return false, nil, nil
		}
	}
	if fullModel {
		// Bind any variable mentioned anywhere but left unconstrained.
		for _, g := range groups {
			for id := range g.vars {
				if _, ok := model[id]; !ok {
					model[id] = 0
				}
			}
		}
	}
	return true, model, nil
}

// relevantVars returns the set of variables in the same pre-
// substitution connected component as cond's variables: every variable
// reachable from cond through shared-variable links in the original
// conjuncts.
func relevantVars(cons []*expr.Expr, cond *expr.Expr) map[uint64]bool {
	parent := map[uint64]uint64{}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	for _, c := range cons {
		vl := c.VarIDs()
		for j := 1; j < len(vl); j++ {
			parent[find(vl[0])] = find(vl[j])
		}
	}
	roots := map[uint64]bool{}
	for _, id := range cond.VarIDs() {
		roots[find(id)] = true
	}
	relevant := map[uint64]bool{}
	for id := range parent {
		if roots[find(id)] {
			relevant[id] = true
		}
	}
	return relevant
}

// refGroup is a set of constraints over a connected set of variables
// (reference partition).
type refGroup struct {
	cons []*expr.Expr
	vars map[uint64]bool
}

func (g *refGroup) touches(vars map[uint64]bool) bool {
	for id := range vars {
		if g.vars[id] {
			return true
		}
	}
	return false
}

// partitioner groups constraints by transitive variable sharing
// (union-find), reusing its maps and buffers across calls instead of
// allocating fresh ones per query.
type partitioner struct {
	parent   map[uint64]uint64
	byRoot   map[uint64]*refGroup
	varLists [][]uint64
}

func (p *partitioner) partition(cons []*expr.Expr) []*refGroup {
	if p.parent == nil {
		p.parent = make(map[uint64]uint64)
		p.byRoot = make(map[uint64]*refGroup)
	}
	clear(p.parent)
	clear(p.byRoot)
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		pr, ok := p.parent[x]
		if !ok {
			p.parent[x] = x
			return x
		}
		if pr != x {
			pr = find(pr)
			p.parent[x] = pr
		}
		return pr
	}
	union := func(a, b uint64) { p.parent[find(a)] = find(b) }

	if cap(p.varLists) < len(cons) {
		p.varLists = make([][]uint64, len(cons))
	}
	varLists := p.varLists[:len(cons)]
	for i, c := range cons {
		vl := c.VarIDs() // cached per-node summary; no DAG walk
		varLists[i] = vl
		for j := 1; j < len(vl); j++ {
			union(vl[0], vl[j])
		}
	}
	var order []*refGroup
	for i, c := range cons {
		if len(varLists[i]) == 0 {
			continue // constant constraints handled by unit pass
		}
		root := find(varLists[i][0])
		g := p.byRoot[root]
		if g == nil {
			g = &refGroup{vars: map[uint64]bool{}}
			p.byRoot[root] = g
			order = append(order, g)
		}
		g.cons = append(g.cons, c)
		for _, v := range varLists[i] {
			g.vars[v] = true
		}
	}
	return order
}
