package solver

import (
	"errors"
	"sort"
	"sync/atomic"

	"cloud9/internal/expr"
)

// ErrBudget is returned when the backtracking search exceeds the solver's
// backtrack budget (the analog of an SMT solver timeout). Callers should
// treat the query result as unknown.
var ErrBudget = errors.New("solver: backtrack budget exceeded")

// Stats counts solver activity. Fields are updated atomically; read them
// with Snapshot for a consistent view.
type Stats struct {
	Queries       uint64 // top-level satisfiability queries
	CacheHits     uint64 // answered from the result cache
	ModelReuse    uint64 // answered by re-checking a recent model
	SolverRuns    uint64 // group searches actually executed
	Backtracks    uint64 // value choices undone
	Unsat         uint64 // queries found unsatisfiable
	UnitPropFolds uint64 // constraints discharged by unit propagation
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Queries:       atomic.LoadUint64(&s.Queries),
		CacheHits:     atomic.LoadUint64(&s.CacheHits),
		ModelReuse:    atomic.LoadUint64(&s.ModelReuse),
		SolverRuns:    atomic.LoadUint64(&s.SolverRuns),
		Backtracks:    atomic.LoadUint64(&s.Backtracks),
		Unsat:         atomic.LoadUint64(&s.Unsat),
		UnitPropFolds: atomic.LoadUint64(&s.UnitPropFolds),
	}
}

type cacheEntry struct {
	sat    bool
	budget bool // query previously exceeded the backtrack budget
	model  expr.Assignment
}

// Solver answers satisfiability queries over constraint sets. It is not
// safe for concurrent use; each worker owns one Solver (matching the
// shared-nothing cluster design — caches are per worker and are *not*
// shipped with job transfers, as in the paper §6 "Constraint Caches").
type Solver struct {
	// MaxBacktracks bounds the search effort per independent group.
	MaxBacktracks uint64
	// Stats accumulates counters across queries.
	Stats Stats

	cache       map[uint64]cacheEntry
	cacheKeys   []uint64 // FIFO eviction order
	maxCache    int
	recent      []expr.Assignment // recent models for the reuse fast path
	maxRecent   int
	scratchSeen map[uint64]bool

	// groupCache memoizes solveGroup outcomes keyed by an
	// order-insensitive hash of the group's constraints. Path conditions
	// grow incrementally, so most groups recur verbatim across queries.
	groupCache     map[uint64]groupResult
	groupCacheKeys []uint64
}

type groupResult struct {
	sat   bool
	model []groupBinding
}

type groupBinding struct {
	id uint64
	v  uint8
}

// New returns a solver with default budgets.
func New() *Solver {
	return &Solver{
		MaxBacktracks: 1 << 16,
		cache:         make(map[uint64]cacheEntry),
		maxCache:      1 << 16,
		maxRecent:     8,
		scratchSeen:   make(map[uint64]bool),
		groupCache:    make(map[uint64]groupResult),
	}
}

// MayBeTrue reports whether cs ∧ cond is satisfiable.
func (s *Solver) MayBeTrue(cs *ConstraintSet, cond *expr.Expr) (bool, error) {
	sat, _, err := s.check(cs, cond, false)
	return sat, err
}

// MustBeTrue reports whether cond holds on every solution of cs.
func (s *Solver) MustBeTrue(cs *ConstraintSet, cond *expr.Expr) (bool, error) {
	sat, _, err := s.check(cs, expr.Not(cond), false)
	return !sat, err
}

// CheckSat reports whether cs itself is satisfiable.
func (s *Solver) CheckSat(cs *ConstraintSet) (bool, error) {
	sat, _, err := s.check(cs, nil, false)
	return sat, err
}

// Solve returns a full model of cs (every referenced variable bound).
// ok=false means unsatisfiable.
func (s *Solver) Solve(cs *ConstraintSet) (expr.Assignment, bool, error) {
	sat, model, err := s.check(cs, nil, true)
	return model, sat, err
}

// SolveWith returns a model of cs ∧ cond.
func (s *Solver) SolveWith(cs *ConstraintSet, cond *expr.Expr) (expr.Assignment, bool, error) {
	sat, model, err := s.check(cs, cond, true)
	return model, sat, err
}

// check is the core query path. When fullModel is false and cond is
// non-nil, independence partitioning restricts the search to groups
// sharing variables with cond.
func (s *Solver) check(cs *ConstraintSet, cond *expr.Expr, fullModel bool) (bool, expr.Assignment, error) {
	atomic.AddUint64(&s.Stats.Queries, 1)

	if cond != nil && cond.IsFalse() {
		atomic.AddUint64(&s.Stats.Unsat, 1)
		return false, nil, nil
	}
	key := cs.Hash()
	if cond != nil {
		key = key*0x9e3779b97f4a7c15 ^ cond.Hash()
	}
	if fullModel {
		key ^= 0xf00d
	}
	if e, ok := s.cache[key]; ok {
		atomic.AddUint64(&s.Stats.CacheHits, 1)
		if e.budget {
			return false, nil, ErrBudget
		}
		if !e.sat {
			atomic.AddUint64(&s.Stats.Unsat, 1)
		}
		return e.sat, e.model, nil
	}

	// Fast path: try recently produced models. Skipped for full-model
	// queries: their results feed concretization decisions that must be
	// deterministic functions of the constraint set alone, or replays
	// diverge across workers (§6 "Broken Replays").
	if !fullModel {
		for _, m := range s.recent {
			if condHolds(cond, m) && cs.EvalAll(m) {
				atomic.AddUint64(&s.Stats.ModelReuse, 1)
				s.put(key, cacheEntry{sat: true, model: m})
				return true, m, nil
			}
		}
	}

	cons := cs.Flattened()
	if cond != nil {
		cons = flatten(cond, cons)
	}
	sat, model, err := s.solveConstraints(cons, cond, fullModel)
	if err != nil {
		if errors.Is(err, ErrBudget) {
			s.put(key, cacheEntry{budget: true})
		}
		return false, nil, err
	}
	if sat {
		s.remember(model)
	} else {
		atomic.AddUint64(&s.Stats.Unsat, 1)
	}
	s.put(key, cacheEntry{sat: sat, model: model})
	return sat, model, nil
}

func condHolds(cond *expr.Expr, m expr.Assignment) bool {
	if cond == nil {
		return true
	}
	v, ok := cond.Eval(m)
	return ok && v != 0
}

func (s *Solver) put(key uint64, e cacheEntry) {
	if len(s.cache) >= s.maxCache {
		// Evict the oldest half; simple and allocation-friendly.
		half := len(s.cacheKeys) / 2
		for _, k := range s.cacheKeys[:half] {
			delete(s.cache, k)
		}
		s.cacheKeys = append(s.cacheKeys[:0], s.cacheKeys[half:]...)
	}
	if _, dup := s.cache[key]; !dup {
		s.cacheKeys = append(s.cacheKeys, key)
	}
	s.cache[key] = e
}

func (s *Solver) remember(m expr.Assignment) {
	if len(s.recent) >= s.maxRecent {
		copy(s.recent, s.recent[1:])
		s.recent = s.recent[:len(s.recent)-1]
	}
	s.recent = append(s.recent, m)
}

// solveConstraints decides a flattened conjunction.
func (s *Solver) solveConstraints(cons []*expr.Expr, cond *expr.Expr, fullModel bool) (bool, expr.Assignment, error) {
	model := expr.Assignment{}

	// Unit propagation to fixpoint: bind Eq(const, var) facts and
	// substitute them everywhere.
	for {
		progress := false
		units := expr.Assignment{}
		next := cons[:0]
		for _, c := range cons {
			if c.IsTrue() {
				atomic.AddUint64(&s.Stats.UnitPropFolds, 1)
				continue
			}
			if c.IsFalse() {
				return false, nil, nil
			}
			if c.Op() == expr.OpLAnd {
				// Substitution may rebuild conjunctions; re-flatten.
				next = flatten(c, next)
				progress = true
				continue
			}
			if c.Op() == expr.OpEq && c.Kid(0).IsConst() && c.Kid(1).IsVar() {
				id := c.Kid(1).VarID()
				v := uint8(c.Kid(0).ConstVal())
				if prev, ok := model[id]; ok && prev != v {
					return false, nil, nil
				}
				if prev, ok := units[id]; ok && prev != v {
					return false, nil, nil
				}
				units[id] = v
				model[id] = v
				progress = true
				atomic.AddUint64(&s.Stats.UnitPropFolds, 1)
				continue
			}
			next = append(next, c)
		}
		cons = next
		if !progress {
			break
		}
		bound := units.VarSet() // one summary for the whole round
		for i, c := range cons {
			cons[i] = c.SubstConstsWith(units, bound)
		}
	}

	// Partition remaining constraints into independent groups.
	groups := partition(cons)

	var queryVars map[uint64]bool
	if cond != nil && !fullModel {
		queryVars = map[uint64]bool{}
		cond.Vars(queryVars, nil)
		// A query var may have been bound by unit propagation already;
		// then its group is trivially consistent with the binding
		// (substitution has happened). Remaining relevance is via the
		// substituted cond's vars.
	}

	for _, g := range groups {
		if queryVars != nil && !g.touches(queryVars) {
			continue // independent of the query; satisfiable on its own
		}
		key := groupKey(g)
		if res, hit := s.groupCache[key]; hit {
			if !res.sat {
				return false, nil, nil
			}
			ok := true
			for _, b := range res.model {
				if prev, bound := model[b.id]; bound && prev != b.v {
					ok = false
					break
				}
			}
			if ok {
				for _, b := range res.model {
					model[b.id] = b.v
				}
				continue
			}
			// Unit bindings conflict with the cached model: fall through
			// to a fresh search.
		}
		before := make(map[uint64]bool, len(g.vars))
		for id := range g.vars {
			if _, bound := model[id]; bound {
				before[id] = true
			}
		}
		ok, err := s.solveGroup(g, model)
		if err != nil {
			return false, nil, err
		}
		// Cache only groups whose variables were entirely free (so the
		// result does not depend on outside unit bindings).
		if len(before) == 0 {
			res := groupResult{sat: ok}
			if ok {
				for id := range g.vars {
					res.model = append(res.model, groupBinding{id, model[id]})
				}
			}
			s.putGroup(key, res)
		}
		if !ok {
			return false, nil, nil
		}
	}
	if fullModel {
		// Bind any variable mentioned anywhere but left unconstrained.
		for _, g := range groups {
			for id := range g.vars {
				if _, ok := model[id]; !ok {
					model[id] = 0
				}
			}
		}
	}
	return true, model, nil
}

// groupKey hashes a group's constraints order-insensitively.
func groupKey(g *group) uint64 {
	var h uint64
	for _, c := range g.cons {
		h += c.Hash() * 0x9e3779b97f4a7c15
	}
	return h
}

func (s *Solver) putGroup(key uint64, res groupResult) {
	if len(s.groupCache) >= s.maxCache {
		half := len(s.groupCacheKeys) / 2
		for _, k := range s.groupCacheKeys[:half] {
			delete(s.groupCache, k)
		}
		s.groupCacheKeys = append(s.groupCacheKeys[:0], s.groupCacheKeys[half:]...)
	}
	if _, dup := s.groupCache[key]; !dup {
		s.groupCacheKeys = append(s.groupCacheKeys, key)
	}
	s.groupCache[key] = res
}

// group is a set of constraints over a connected set of variables.
type group struct {
	cons []*expr.Expr
	vars map[uint64]bool
}

func (g *group) touches(vars map[uint64]bool) bool {
	for id := range vars {
		if g.vars[id] {
			return true
		}
	}
	return false
}

// partition groups constraints by transitive variable sharing (union-find).
func partition(cons []*expr.Expr) []*group {
	parent := map[uint64]uint64{}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	union := func(a, b uint64) { parent[find(a)] = find(b) }

	varLists := make([][]uint64, len(cons))
	for i, c := range cons {
		vl := c.VarIDs() // cached per-node summary; no DAG walk
		varLists[i] = vl
		for j := 1; j < len(vl); j++ {
			union(vl[0], vl[j])
		}
	}
	byRoot := map[uint64]*group{}
	var order []*group
	for i, c := range cons {
		if len(varLists[i]) == 0 {
			continue // constant constraints handled by unit pass
		}
		root := find(varLists[i][0])
		g := byRoot[root]
		if g == nil {
			g = &group{vars: map[uint64]bool{}}
			byRoot[root] = g
			order = append(order, g)
		}
		g.cons = append(g.cons, c)
		for _, v := range varLists[i] {
			g.vars[v] = true
		}
	}
	return order
}

// solveGroup runs backtracking search over one independent group,
// extending model in place on success. The search works over a dense
// slice-backed assignment (see expr.EvalSlice) — this is the hot path.
func (s *Solver) solveGroup(g *group, model expr.Assignment) (bool, error) {
	atomic.AddUint64(&s.Stats.SolverRuns, 1)

	maxID := uint64(0)
	for id := range g.vars {
		if id > maxID {
			maxID = id
		}
	}
	for id := range model {
		if id > maxID {
			maxID = id
		}
	}
	if maxID >= 1<<22 {
		return false, ErrBudget // pathological id space; treat as unknown
	}
	vals := make([]int16, maxID+1)
	for i := range vals {
		vals[i] = -1
	}
	for id, v := range model {
		vals[id] = int16(v)
	}

	vars := make([]uint64, 0, len(g.vars))
	for id := range g.vars {
		if vals[id] < 0 {
			vars = append(vars, id)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	if len(vars) == 0 {
		// Everything bound by units; just verify.
		for _, c := range g.cons {
			v, ok := c.EvalSlice(vals)
			if !ok || v == 0 {
				return false, nil
			}
		}
		return true, nil
	}

	domains := make(map[uint64]*domain, len(vars))
	for _, id := range vars {
		d := fullDomain()
		domains[id] = &d
	}

	// Per-constraint bookkeeping: which vars it mentions.
	type conInfo struct {
		c    *expr.Expr
		vars []uint64
	}
	infos := make([]conInfo, 0, len(g.cons))
	for _, c := range g.cons {
		infos = append(infos, conInfo{c: c, vars: c.VarIDs()})
	}

	// pruneUnary restricts var id's domain using constraint c, assuming
	// id is c's only unbound variable. The constraint is first partially
	// evaluated under the current assignment, collapsing everything but
	// the scanned variable; the 256-value scan then runs on the (usually
	// tiny) residual. Returns false if the domain empties.
	pruneUnary := func(c *expr.Expr, id uint64) bool {
		d := domains[id]
		reduced := c.SubstSlice(vals)
		if reduced.IsConst() {
			return reduced.ConstVal() != 0
		}
		v, ok := d.first()
		for ok {
			vals[id] = int16(v)
			ev, evOK := reduced.EvalSlice(vals)
			if !evOK || ev == 0 {
				d.remove(v)
			}
			v, ok = d.next(v)
		}
		vals[id] = -1
		return !d.empty()
	}

	unboundIn := func(ci conInfo) (uint64, int) {
		var last uint64
		n := 0
		for _, id := range ci.vars {
			if vals[id] < 0 {
				last = id
				n++
			}
		}
		return last, n
	}

	// Initial unary pruning pass.
	for _, ci := range infos {
		if id, n := unboundIn(ci); n == 1 {
			if !pruneUnary(ci.c, id) {
				return false, nil
			}
		} else if n == 0 {
			v, ok := ci.c.EvalSlice(vals)
			if !ok || v == 0 {
				return false, nil
			}
		}
	}

	var backtracks uint64

	// Count how many constraints mention each var, for ordering.
	mentions := map[uint64]int{}
	for _, ci := range infos {
		for _, id := range ci.vars {
			mentions[id]++
		}
	}

	// minUnbound[id] = the smallest number of unbound variables among
	// constraints mentioning id (computed per pick). Choosing the
	// variable that brings some constraint closest to unary lets forward
	// checking prune as early as possible.
	pickVar := func() (uint64, bool) {
		nearUnary := map[uint64]int{}
		for _, ci := range infos {
			_, n := unboundIn(ci)
			if n == 0 {
				continue
			}
			for _, id := range ci.vars {
				if vals[id] >= 0 {
					continue
				}
				if cur, ok := nearUnary[id]; !ok || n < cur {
					nearUnary[id] = n
				}
			}
		}
		best := uint64(0)
		bestScore := -1
		found := false
		for _, id := range vars {
			if vals[id] >= 0 {
				continue
			}
			near := nearUnary[id]
			if near == 0 {
				near = 64 // mentioned by no active constraint
			}
			// Prefer: constraints nearest unary, then small domains,
			// then high mention counts.
			score := (64-near)*1_000_000 + (256-domains[id].count())*1000 + mentions[id]
			if score > bestScore {
				best, bestScore, found = id, score, true
			}
		}
		return best, found
	}

	var solve func() (bool, error)
	solve = func() (bool, error) {
		id, found := pickVar()
		if !found {
			// All assigned: final verification.
			for _, ci := range infos {
				v, ok := ci.c.EvalSlice(vals)
				if !ok || v == 0 {
					return false, nil
				}
			}
			return true, nil
		}
		d := domains[id]
		v, ok := d.first()
		for ok {
			vals[id] = int16(v)
			// Forward checking: constraints that now have exactly one
			// unbound var prune that var's domain.
			saved := map[uint64]domain{}
			feasible := true
			for _, ci := range infos {
				uid, n := unboundIn(ci)
				if n == 0 {
					ev, evOK := ci.c.EvalSlice(vals)
					if !evOK || ev == 0 {
						feasible = false
						break
					}
				} else if n == 1 {
					if _, snap := saved[uid]; !snap {
						saved[uid] = *domains[uid]
					}
					if !pruneUnary(ci.c, uid) {
						feasible = false
						break
					}
				}
			}
			if feasible {
				done, err := solve()
				if err != nil {
					return false, err
				}
				if done {
					return true, nil
				}
			}
			// Restore and try next value.
			for uid, dom := range saved {
				restored := dom
				*domains[uid] = restored
			}
			vals[id] = -1
			backtracks++
			if backtracks > s.MaxBacktracks {
				return false, ErrBudget
			}
			v, ok = d.next(v)
		}
		return false, nil
	}

	sat, err := solve()
	atomic.AddUint64(&s.Stats.Backtracks, backtracks)
	if err != nil || !sat {
		return sat, err
	}
	for _, id := range vars {
		model[id] = uint8(vals[id])
	}
	return true, nil
}
