package solver

import (
	"sort"
	"sync/atomic"

	"cloud9/internal/expr"
)

// Incremental solve state. Path conditions are persistent parent-linked
// trees (ConstraintSet); execution extends them one constraint at a
// time, and every branch site queries the solver about the current set.
// Instead of re-flattening, re-unit-propagating and re-partitioning the
// whole set on each query (O(N) per query, O(N²) along a path), the
// solver memoizes the *solved form* of each set node in an
// identity-keyed side table and derives a child's form from its
// parent's in time proportional to the new constraint's cone:
//
//   - unit propagation re-runs only over the constraints transitively
//     reachable from the new constraint's variables (dissolved groups),
//   - the independence partition is updated by merging the one or two
//     groups the new constraint touches, sharing every untouched group
//     pointer with the parent, and
//   - a witness model is inherited from the parent (or the branch query
//     that created the constraint) so later queries can often be
//     answered by evaluation alone.
//
// This is the paper's §6 "Constraint Caches" taken to its limit: the
// cache key is the set itself, and the cached value is the entire
// preprocessed solver input.

// setState is the memoized solve state of one ConstraintSet node. It is
// derived incrementally from the parent node's state and cached in
// Solver.states. All fields are immutable once the state is published
// except the lazily stamped model/fullModel/sortedHashes caches.
type setState struct {
	// unsat marks sets proven unsatisfiable by propagation alone
	// (constant-false residual or conflicting unit equalities).
	unsat bool
	// units holds the variables fixed by unit propagation
	// (Eq(const,var) facts and their transitive consequences). Shared
	// with the parent state when extending added no units.
	units    expr.Assignment
	unitVars *expr.VarSet
	// groups is the independence partition of the residual (non-unit)
	// constraints, with units substituted away. Untouched groups are
	// pointer-shared with the parent state.
	groups []*igroup
	// bounds is the per-variable interval abstraction of this set: a
	// sound over-approximation of its solutions, derived incrementally
	// alongside units/groups and shared with the parent state when the
	// extension narrowed nothing (see interval.go). Queries consult it
	// as their first tier, before any cache or search.
	bounds boundsMap
	// model, when non-nil, is an assignment known to witness the
	// satisfiability of this set: it satisfies units and every solved
	// group (unsolved groups are independently satisfiable by the
	// exploration invariant — states only exist on feasible paths).
	// Used by the Fork/MayBeTrue evaluation fast path; never used for
	// full-model (concretization) queries, which must stay canonical.
	model expr.Assignment
	// sortedHashes is the lazily computed sorted multiset of the set's
	// flattened conjunct hashes, the subsumption-cache key.
	sortedHashes []uint64
}

// igroup is one independent group of the residual partition: residual
// constraints over a connected set of variables. Immutable once built.
type igroup struct {
	cons []*expr.Expr
	vars *expr.VarSet
	key  uint64 // order-insensitive hash of cons, the group-cache key
}

func groupHash(cons []*expr.Expr) uint64 {
	var h uint64
	for _, c := range cons {
		h += c.Hash() * 0x9e3779b97f4a7c15
	}
	return h
}

// state returns the memoized solve state for cs, deriving it
// incrementally from the nearest cached ancestor (or the empty state).
// Derivation is a pure function of the Append chain, so two solvers
// that see the same chain — or one solver before and after an eviction
// — compute identical states; that determinism is what custody-exact
// replays are built on.
func (s *Solver) state(cs *ConstraintSet) *setState {
	if cs == nil {
		return s.empty
	}
	if st, ok := s.states[cs]; ok {
		atomic.AddUint64(&s.Stats.StateHits, 1)
		return st
	}
	// Walk up to the nearest cached ancestor, then extend back down.
	chain := s.chainScratch[:0]
	st := s.empty
	for n := cs; n != nil; n = n.parent {
		if c, ok := s.states[n]; ok {
			st = c
			break
		}
		chain = append(chain, n)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		parent := st
		st = s.extend(parent, n.c)
		s.seedModel(parent, n, st)
		s.putState(n, st)
	}
	s.chainScratch = chain[:0]
	return st
}

// seedModel stamps a witness model on a freshly derived state: the
// parent's witness if it already satisfies the new constraint, else the
// model cached by the branch query that introduced the constraint
// (MayBeTrue(parent, c) stores its model under exactly this key).
func (s *Solver) seedModel(parent *setState, n *ConstraintSet, st *setState) {
	if st.unsat || st.model != nil {
		return
	}
	if m := parent.model; m != nil {
		if v, ok := n.c.Eval(m); ok && v != 0 {
			st.model = m
			return
		}
	}
	var parentHash uint64
	if n.parent != nil {
		parentHash = n.parent.hash
	}
	key := parentHash*0x9e3779b97f4a7c15 ^ n.c.Hash()
	if e, ok := s.cache[key]; ok && e.sat && e.model != nil {
		st.model = e.model
	}
}

func (s *Solver) putState(cs *ConstraintSet, st *setState) {
	s.stateKeys = evictHalf(s.states, s.stateKeys, s.maxStates)
	if _, dup := s.states[cs]; !dup {
		s.stateKeys = append(s.stateKeys, cs)
	}
	s.states[cs] = st
}

// extend derives the solve state of parent ∧ c without touching parent:
// it substitutes the known units into c, runs unit propagation to
// fixpoint over the new constraint's cone only (groups sharing
// variables with newly derived units are dissolved and re-propagated),
// and merges the residual into the partition by combining just the
// groups it touches. Untouched groups and, when no units were added,
// the unit assignment itself are shared with the parent.
func (s *Solver) extend(parent *setState, c *expr.Expr) *setState {
	if parent.unsat {
		return parent
	}
	atomic.AddUint64(&s.Stats.StateExtends, 1)
	st := &setState{
		units:    parent.units,
		unitVars: parent.unitVars,
		groups:   parent.groups,
		bounds:   parent.bounds,
	}
	if len(st.units) > 0 {
		c = c.SubstConstsWith(st.units, st.unitVars)
	}
	pool := flatten(c, s.poolScratch[:0])
	unitsOwned, groupsOwned := false, false
	ref := boundsRefiner{b: parent.bounds}

	for len(pool) > 0 {
		// Scan the pool: fold constants, harvest unit equalities.
		var gathered expr.Assignment
		rest := pool[:0]
		for _, e := range pool {
			switch {
			case e.IsTrue():
				atomic.AddUint64(&s.Stats.UnitPropFolds, 1)
			case e.IsFalse():
				st.unsat = true
				s.poolScratch = pool[:0]
				return st
			case e.Op() == expr.OpEq && e.Kid(0).IsConst() && e.Kid(1).IsVar():
				id := e.Kid(1).VarID()
				v := uint8(e.Kid(0).ConstVal())
				if prev, ok := st.units[id]; ok && prev != v {
					st.unsat = true
					s.poolScratch = pool[:0]
					return st
				}
				if prev, ok := gathered[id]; ok && prev != v {
					st.unsat = true
					s.poolScratch = pool[:0]
					return st
				}
				if gathered == nil {
					gathered = expr.Assignment{}
				}
				gathered[id] = v
				atomic.AddUint64(&s.Stats.UnitPropFolds, 1)
			default:
				rest = append(rest, e)
			}
		}
		if gathered == nil {
			pool = rest
			break
		}
		// New units: adopt them (copy-on-write), substitute them into
		// the surviving pool, and dissolve only the groups in their
		// cone — everything else is untouched by construction.
		if !unitsOwned {
			u := make(expr.Assignment, len(st.units)+len(gathered))
			for id, v := range st.units {
				u[id] = v
			}
			st.units = u
			unitsOwned = true
		}
		for id, v := range gathered {
			st.units[id] = v
			// A unit pins the variable's interval to a point. The
			// narrowings commute (interval intersection), so map order
			// does not affect the result.
			ref.narrowVar(id, ival{uint64(v), uint64(v)})
		}
		if ref.conflict {
			// The unit lands outside bounds an earlier constraint
			// established: the extended set has an empty interval.
			atomic.AddUint64(&s.Stats.IntervalEmpty, 1)
			st.unsat = true
			s.poolScratch = pool[:0]
			return st
		}
		bound := gathered.VarSet()
		st.unitVars = st.unitVars.Union(bound)
		next := s.poolScratch2[:0]
		for _, e := range rest {
			next = flatten(e.SubstConstsWith(gathered, bound), next)
		}
		if !groupsOwned {
			st.groups = append(make([]*igroup, 0, len(st.groups)+1), st.groups...)
			groupsOwned = true
		}
		kept := st.groups[:0]
		for _, g := range st.groups {
			if g.vars.Intersects(bound) {
				for _, gc := range g.cons {
					next = flatten(gc.SubstConstsWith(gathered, bound), next)
				}
			} else {
				kept = append(kept, g)
			}
		}
		st.groups = kept
		pool, s.poolScratch2 = next, pool[:0]
	}

	// Fixpoint reached: place the residual constraints, merging the
	// groups each one touches.
	for _, e := range pool {
		ev := e.FreeVars()
		if ev.Empty() {
			// Ground non-constant residuals cannot arise (constant
			// folding collapses them); skip defensively.
			continue
		}
		if !groupsOwned {
			st.groups = append(make([]*igroup, 0, len(st.groups)+1), st.groups...)
			groupsOwned = true
		}
		merged := &igroup{vars: ev}
		kept := st.groups[:0]
		for _, g := range st.groups {
			if g.vars.Intersects(merged.vars) {
				merged.cons = append(merged.cons, g.cons...)
				merged.vars = merged.vars.Union(g.vars)
			} else {
				kept = append(kept, g)
			}
		}
		merged.cons = append(merged.cons, e)
		merged.key = groupHash(merged.cons)
		st.groups = append(kept, merged)
	}
	s.poolScratch = pool[:0]

	// Refine the bounds from the groups this extension created or
	// rewrote (the ones not pointer-shared with the parent; surviving
	// parent groups keep their relative order, so a two-pointer
	// subsequence match identifies them). Parent-shared groups were
	// already propagated when their own extension built them.
	fresh := s.groupScratch[:0]
	inh := 0
	for _, g := range st.groups {
		shared := false
		for inh < len(parent.groups) {
			match := parent.groups[inh] == g
			inh++
			if match {
				shared = true
				break
			}
		}
		if !shared {
			fresh = append(fresh, g)
		}
	}
	if len(fresh) > 0 && !refineBounds(&ref, fresh) {
		atomic.AddUint64(&s.Stats.IntervalEmpty, 1)
		st.unsat = true
	}
	s.groupScratch = fresh[:0]
	st.bounds = ref.b
	return st
}

// hashesFor returns the sorted conjunct-hash multiset of cs, the
// subsumption-cache key, cached on the set's state. ok=false means the
// set is too deep to key cheaply (the O(N log N) key build would
// dominate the query).
func (s *Solver) hashesFor(cs *ConstraintSet, st *setState) ([]uint64, bool) {
	if cs.Len() == 0 {
		return nil, true
	}
	if cs.Len() > subsumeMaxDepth {
		return nil, false
	}
	if st.sortedHashes != nil {
		return st.sortedHashes, true
	}
	hs := make([]uint64, 0, cs.Len())
	for n := cs; n != nil; n = n.parent {
		hs = appendConjunctHashes(n.c, hs)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	st.sortedHashes = hs
	return hs, true
}

// appendConjunctHashes appends the hashes of c's top-level conjuncts
// (the same decomposition flatten performs).
func appendConjunctHashes(c *expr.Expr, out []uint64) []uint64 {
	if c.Op() == expr.OpLAnd {
		out = appendConjunctHashes(c.Kid(0), out)
		return appendConjunctHashes(c.Kid(1), out)
	}
	return append(out, c.Hash())
}
