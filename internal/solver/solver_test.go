package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloud9/internal/expr"
)

func v(id uint64) *expr.Expr      { return expr.Var(id, "v") }
func c8(x uint64) *expr.Expr      { return expr.Const(x, expr.W8) }
func c32(x uint64) *expr.Expr     { return expr.Const(x, expr.W32) }
func w32(e *expr.Expr) *expr.Expr { return expr.ZExt(e, expr.W32) }

func TestEmptySetSat(t *testing.T) {
	s := New()
	sat, err := s.CheckSat(EmptySet)
	if err != nil || !sat {
		t.Fatalf("empty set should be sat: %v %v", sat, err)
	}
}

func TestConstraintSetPersistence(t *testing.T) {
	a := EmptySet.Append(expr.Ult(v(0), c8(10)))
	b := a.Append(expr.Ult(v(1), c8(20)))
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("lens %d %d", a.Len(), b.Len())
	}
	// a unchanged by extending into b.
	if len(a.Slice()) != 1 {
		t.Fatal("parent set mutated")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("hash should change when appending")
	}
	// Appending true is a no-op.
	if a.Append(expr.True()) != a {
		t.Fatal("appending true should return same set")
	}
}

func TestSimpleSatUnsat(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(10)))
	sat, err := s.MayBeTrue(cs, expr.Eq(v(0), c8(5)))
	if err != nil || !sat {
		t.Fatalf("x<10 && x==5 should be sat: %v %v", sat, err)
	}
	sat, err = s.MayBeTrue(cs, expr.Eq(v(0), c8(15)))
	if err != nil || sat {
		t.Fatalf("x<10 && x==15 should be unsat: %v %v", sat, err)
	}
}

func TestMustBeTrue(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(1))) // x < 1 => x == 0
	must, err := s.MustBeTrue(cs, expr.Eq(v(0), c8(0)))
	if err != nil || !must {
		t.Fatalf("x<1 must imply x==0: %v %v", must, err)
	}
	must, err = s.MustBeTrue(cs, expr.Eq(v(0), c8(1)))
	if err != nil || must {
		t.Fatal("x<1 must not imply x==1")
	}
}

func TestSolveProducesModel(t *testing.T) {
	s := New()
	cs := EmptySet.
		Append(expr.Ult(c8(10), v(0))).              // x > 10
		Append(expr.Ult(v(0), c8(20))).              // x < 20
		Append(expr.Eq(v(1), expr.Add(v(0), c8(1)))) // y == x+1
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("should be sat: %v", err)
	}
	if !(m[0] > 10 && m[0] < 20) {
		t.Errorf("model x=%d out of range", m[0])
	}
	if m[1] != m[0]+1 {
		t.Errorf("model y=%d, want x+1=%d", m[1], m[0]+1)
	}
	if !cs.EvalAll(m) {
		t.Error("model does not satisfy the constraint set")
	}
}

func TestTransitiveChain(t *testing.T) {
	// x0 == x1, x1 == x2, ..., x9 == 42  => all equal 42.
	s := New()
	cs := EmptySet
	for i := uint64(0); i < 9; i++ {
		cs = cs.Append(expr.Eq(v(i), v(i+1)))
	}
	cs = cs.Append(expr.Eq(v(9), c8(42)))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("chain should be sat: %v", err)
	}
	for i := uint64(0); i < 10; i++ {
		if m[i] != 42 {
			t.Fatalf("x%d = %d, want 42", i, m[i])
		}
	}
}

func TestUnsatChain(t *testing.T) {
	s := New()
	cs := EmptySet.
		Append(expr.Eq(v(0), v(1))).
		Append(expr.Eq(v(1), c8(1))).
		Append(expr.Eq(v(0), c8(2)))
	sat, err := s.CheckSat(cs)
	if err != nil || sat {
		t.Fatal("contradictory chain should be unsat")
	}
}

func TestMultiByteEquality(t *testing.T) {
	// 32-bit value from 4 symbolic bytes == magic constant.
	s := New()
	word := expr.Concat(expr.Concat(v(3), v(2)), expr.Concat(v(1), v(0)))
	cs := EmptySet.Append(expr.Eq(c32(0xdeadbeef), word))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("magic equality should be sat: %v", err)
	}
	got := uint32(m[3])<<24 | uint32(m[2])<<16 | uint32(m[1])<<8 | uint32(m[0])
	if got != 0xdeadbeef {
		t.Fatalf("model word = %#x", got)
	}
}

func TestMultiByteComparisonSplit(t *testing.T) {
	// 16-bit value < 0x0102 — solvable without 65k enumeration because the
	// comparison byte-splits at construction.
	s := New()
	word := expr.Concat(v(1), v(0))
	cs := EmptySet.
		Append(expr.Ult(expr.Const(0x0101, expr.W16), word)).
		Append(expr.Ult(word, expr.Const(0x0104, expr.W16)))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("range should be sat: %v", err)
	}
	got := uint16(m[1])<<8 | uint16(m[0])
	if !(got > 0x0101 && got < 0x0104) {
		t.Fatalf("model = %#x", got)
	}
}

func TestIndependencePartitioning(t *testing.T) {
	s := New()
	// Two independent groups: {v0,v1} and {v2}.
	cs := EmptySet.
		Append(expr.Ult(v(0), v(1))).
		Append(expr.Eq(v(2), c8(7)))
	runsBefore := s.Stats.Snapshot().SolverRuns
	sat, err := s.MayBeTrue(cs, expr.Ult(c8(100), v(1)))
	if err != nil || !sat {
		t.Fatalf("query should be sat: %v", err)
	}
	runs := s.Stats.Snapshot().SolverRuns - runsBefore
	// Only the {v0,v1} group should be searched (v2 bound by unit prop
	// costs no run at all).
	if runs > 1 {
		t.Errorf("expected at most 1 group search, got %d", runs)
	}
}

func TestCacheHit(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(10)))
	q := expr.Eq(v(0), c8(3))
	if _, err := s.MayBeTrue(cs, q); err != nil {
		t.Fatal(err)
	}
	before := s.Stats.Snapshot()
	if _, err := s.MayBeTrue(cs, q); err != nil {
		t.Fatal(err)
	}
	after := s.Stats.Snapshot()
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("expected a cache hit, got %+v -> %+v", before, after)
	}
}

func TestModelReuse(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(10)))
	if _, err := s.MayBeTrue(cs, expr.Ult(v(0), c8(9))); err != nil {
		t.Fatal(err)
	}
	// A weaker different query satisfied by the same model should hit the
	// model-reuse fast path (not the exact-match cache).
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, expr.Ult(v(0), c8(8)))
	if err != nil || !sat {
		t.Fatal("weaker query should be sat")
	}
	after := s.Stats.Snapshot()
	if after.ModelReuse != before.ModelReuse+1 {
		t.Errorf("expected model reuse, stats %+v -> %+v", before, after)
	}
}

func TestHasFalse(t *testing.T) {
	cs := EmptySet.Append(expr.False())
	if !cs.HasFalse() {
		t.Fatal("HasFalse should detect constant false")
	}
	s := New()
	sat, err := s.CheckSat(cs)
	if err != nil || sat {
		t.Fatal("false constraint should be unsat")
	}
}

func TestArithmeticRelation(t *testing.T) {
	// x + y == 5 (mod 256) with x < 10 and y > 200 forces wraparound
	// (x + y = 261): needs real search over both variables.
	s := New()
	cs := EmptySet.
		Append(expr.Eq(c8(5), expr.Add(v(0), v(1)))).
		Append(expr.Ult(v(0), c8(10))).
		Append(expr.Ult(c8(200), v(1)))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("should be sat: %v", err)
	}
	if uint8(m[0]+m[1]) != 5 || m[0] >= 10 || m[1] <= 200 {
		t.Fatalf("bad model %v", m)
	}
	// And the over-constrained variant is unsat: x + y == 100 cannot
	// wrap, so y = 100 - x <= 100 contradicts y > 200.
	cs2 := EmptySet.
		Append(expr.Eq(c8(100), expr.Add(v(0), v(1)))).
		Append(expr.Ult(v(0), c8(10))).
		Append(expr.Ult(c8(200), v(1)))
	sat, err = s.CheckSat(cs2)
	if err != nil || sat {
		t.Fatal("non-wrapping variant should be unsat")
	}
}

func TestSignedConstraints(t *testing.T) {
	s := New()
	// Signed: x > -5 and x < 3 (as int8).
	cs := EmptySet.
		Append(expr.Slt(c8(0xfb), v(0))). // -5 < x
		Append(expr.Slt(v(0), c8(3)))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("signed range should be sat: %v", err)
	}
	sx := int8(m[0])
	if !(sx > -5 && sx < 3) {
		t.Fatalf("model x=%d out of signed range", sx)
	}
}

func TestUnsatRange(t *testing.T) {
	s := New()
	cs := EmptySet.
		Append(expr.Ult(v(0), c8(5))).
		Append(expr.Ult(c8(9), v(0)))
	sat, err := s.CheckSat(cs)
	if err != nil || sat {
		t.Fatal("x<5 && x>9 should be unsat")
	}
}

func TestSolveWithExtra(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(10)))
	m, sat, err := s.SolveWith(cs, expr.Eq(v(0), c8(7)))
	if err != nil || !sat || m[0] != 7 {
		t.Fatalf("SolveWith model %v sat=%v err=%v", m, sat, err)
	}
}

func TestWideArithmetic(t *testing.T) {
	// zext(x)*2 + zext(y) == 515 over 32 bits.
	s := New()
	sum := expr.Add(expr.Mul(w32(v(0)), c32(2)), w32(v(1)))
	cs := EmptySet.Append(expr.Eq(c32(515), sum))
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("wide arithmetic should be sat: %v", err)
	}
	if uint32(m[0])*2+uint32(m[1]) != 515 {
		t.Fatalf("model %v does not satisfy", m)
	}
}

// Property: any model the solver returns satisfies the constraint set.
func TestQuickModelsSatisfy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	for i := 0; i < 300; i++ {
		nv := 1 + rng.Intn(4)
		cs := EmptySet
		for j := 0; j < 1+rng.Intn(4); j++ {
			cs = cs.Append(randomConstraint(rng, nv))
		}
		m, sat, err := s.Solve(cs)
		if err != nil {
			continue
		}
		if sat && !cs.EvalAll(m) {
			t.Fatalf("model %v does not satisfy %v", m, cs.Slice())
		}
		if !sat {
			// Cross-check: random sampling should not find a model.
			for k := 0; k < 200; k++ {
				a := expr.Assignment{}
				for id := 0; id < nv; id++ {
					a[uint64(id)] = uint8(rng.Intn(256))
				}
				if cs.EvalAll(a) {
					t.Fatalf("solver said unsat but %v satisfies %v", a, cs.Slice())
				}
			}
		}
	}
}

// Property: MayBeTrue(cs, e) || MayBeTrue(cs, !e) for satisfiable cs.
func TestQuickBranchCompleteness(t *testing.T) {
	f := func(bound uint8) bool {
		s := New()
		cs := EmptySet.Append(expr.Ule(v(0), c8(uint64(bound))))
		cond := expr.Ult(v(0), c8(uint64(bound)/2+1))
		a, err1 := s.MayBeTrue(cs, cond)
		b, err2 := s.MayBeTrue(cs, expr.Not(cond))
		return err1 == nil && err2 == nil && (a || b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomConstraint(rng *rand.Rand, nv int) *expr.Expr {
	mkTerm := func() *expr.Expr {
		if rng.Intn(2) == 0 {
			return v(uint64(rng.Intn(nv)))
		}
		return c8(uint64(rng.Intn(256)))
	}
	l, r := mkTerm(), mkTerm()
	if rng.Intn(3) == 0 {
		l = expr.Add(l, mkTerm())
	}
	switch rng.Intn(4) {
	case 0:
		return expr.Eq(l, r)
	case 1:
		return expr.Ult(l, r)
	case 2:
		return expr.Ule(l, r)
	default:
		return expr.Not(expr.Eq(l, r))
	}
}

func BenchmarkSolverBranchQuery(b *testing.B) {
	s := New()
	cs := EmptySet
	for i := uint64(0); i < 16; i++ {
		cs = cs.Append(expr.Ult(v(i), c8(200)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := expr.Eq(v(uint64(i%16)), c8(uint64(i%200)))
		if _, err := s.MayBeTrue(cs, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverMagicWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		word := expr.Concat(expr.Concat(v(3), v(2)), expr.Concat(v(1), v(0)))
		cs := EmptySet.Append(expr.Eq(c32(uint64(0xcafe0000)|uint64(i&0xffff)), word))
		if _, sat, err := s.Solve(cs); err != nil || !sat {
			b.Fatal("unexpected unsat")
		}
	}
}

// Canonical models: concretization decisions must be deterministic
// functions of the constraint set alone, independent of query history,
// or path replays diverge across workers (§6 "Broken Replays").
func TestSolveModelIsCanonical(t *testing.T) {
	build := func() *ConstraintSet {
		return EmptySet.
			Append(expr.Ult(c8(10), v(0))).
			Append(expr.Ult(v(1), v(0))).
			Append(expr.Not(expr.Eq(v(2), c8(0))))
	}
	// Solver A answers unrelated queries first (polluting its recent-model
	// cache); solver B solves directly. Models must match exactly.
	a := New()
	for i := uint64(0); i < 20; i++ {
		cs := EmptySet.Append(expr.Ult(v(i+10), c8(uint64(50+i))))
		if _, err := a.MayBeTrue(cs, expr.Eq(v(i+10), c8(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	ma, satA, err := a.Solve(build())
	if err != nil || !satA {
		t.Fatal("A unsat")
	}
	b := New()
	mb, satB, err := b.Solve(build())
	if err != nil || !satB {
		t.Fatal("B unsat")
	}
	for _, id := range []uint64{0, 1, 2} {
		if ma[id] != mb[id] {
			t.Fatalf("model divergence on var %d: %d vs %d", id, ma[id], mb[id])
		}
	}
}

// Property: SubstSlice agrees with SubstConsts for random assignments.
func TestQuickSubstSliceMatchesSubstConsts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		e := randomConstraint(rng, 3)
		vals := make([]int16, 3)
		asg := expr.Assignment{}
		for id := range vals {
			if rng.Intn(2) == 0 {
				vals[id] = int16(rng.Intn(256))
				asg[uint64(id)] = uint8(vals[id])
			} else {
				vals[id] = -1
			}
		}
		s1 := e.SubstSlice(vals)
		s2 := e.SubstConsts(asg)
		if !expr.Equal(s1, s2) {
			t.Fatalf("SubstSlice %v != SubstConsts %v for %v", s1, s2, e)
		}
	}
}

func TestBudgetResultIsCached(t *testing.T) {
	s := New()
	s.MaxBacktracks = 1
	// A group needing real search with an impossible budget.
	cs := EmptySet.
		Append(expr.Eq(c8(7), expr.Add(v(0), expr.Add(v(1), v(2))))).
		Append(expr.Not(expr.Eq(v(0), v(1)))).
		Append(expr.Ult(v(2), v(0)))
	_, _, err := s.Solve(cs)
	if err == nil {
		t.Skip("budget unexpectedly sufficient")
	}
	before := s.Stats.Snapshot()
	_, _, err2 := s.Solve(cs)
	if err2 == nil {
		t.Fatal("second query should also report budget exhaustion")
	}
	after := s.Stats.Snapshot()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatal("budget failures should be answered from the cache")
	}
}
