package solver

import (
	"math/rand"
	"testing"

	"cloud9/internal/expr"
)

// Differential property test: the incremental query path (memoized
// per-set states, subsumption cache, model reuse, tiny caps forcing
// evictions) must agree with a from-scratch reference solve on every
// query over randomized Append-tree workloads.
//
// Workloads maintain the execution invariant the solver's fast paths
// rely on — a constraint is only appended when the extended set stays
// satisfiable, exactly as the interpreter guards every Append with a
// feasibility check — so the sets mirror real path conditions.
func TestQuickDifferentialIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inc := New()
	// Tiny caps: force state/result-cache evictions and rebuild-from-
	// ancestor paths mid-workload.
	inc.maxStates = 8
	inc.maxCache = 16

	for round := 0; round < 60; round++ {
		ref := New() // fresh reference per round: no cross-query state
		nv := 2 + rng.Intn(4)
		sets := []*ConstraintSet{EmptySet}
		// Grow a tree of feasible sets by appending onto random members.
		for grow := 0; grow < 12; grow++ {
			base := sets[rng.Intn(len(sets))]
			c := randomConstraint(rng, nv)
			ok, err := inc.MayBeTrue(base, c)
			if err != nil {
				continue
			}
			refOK, err := ref.ReferenceMayBeTrue(base, c)
			if err != nil {
				t.Fatalf("reference error: %v", err)
			}
			if ok != refOK {
				t.Fatalf("MayBeTrue divergence: incremental=%v reference=%v for %v ++ %v",
					ok, refOK, base.Slice(), c)
			}
			if ok {
				sets = append(sets, base.Append(c))
			}
		}
		// Interleaved queries across the tree: branch queries, forks,
		// and full-model solves, each checked against the reference.
		for q := 0; q < 20; q++ {
			cs := sets[rng.Intn(len(sets))]
			cond := randomConstraint(rng, nv)
			switch rng.Intn(3) {
			case 0:
				got, err := inc.MayBeTrue(cs, cond)
				if err != nil {
					continue
				}
				want, err := ref.ReferenceMayBeTrue(cs, cond)
				if err != nil {
					t.Fatalf("reference error: %v", err)
				}
				if got != want {
					t.Fatalf("MayBeTrue divergence: incremental=%v reference=%v for %v | %v",
						got, want, cs.Slice(), cond)
				}
			case 1:
				mayT, mayF, err := inc.Fork(cs, cond)
				if err != nil {
					continue
				}
				wantT, err := ref.ReferenceMayBeTrue(cs, cond)
				if err != nil {
					t.Fatal(err)
				}
				wantF, err := ref.ReferenceMayBeTrue(cs, expr.Not(cond))
				if err != nil {
					t.Fatal(err)
				}
				if mayT != wantT || mayF != wantF {
					t.Fatalf("Fork divergence: incremental=(%v,%v) reference=(%v,%v) for %v | %v",
						mayT, mayF, wantT, wantF, cs.Slice(), cond)
				}
			case 2:
				m, sat, err := inc.Solve(cs)
				if err != nil {
					continue
				}
				rm, refSat, err := ref.ReferenceSolve(cs)
				if err != nil {
					t.Fatal(err)
				}
				if sat != refSat {
					t.Fatalf("Solve divergence: incremental=%v reference=%v for %v",
						sat, refSat, cs.Slice())
				}
				if sat && !cs.EvalAll(m) {
					t.Fatalf("incremental model %v does not satisfy %v", m, cs.Slice())
				}
				if refSat && !cs.EvalAll(rm) {
					t.Fatalf("reference model %v does not satisfy %v", rm, cs.Slice())
				}
			}
		}
	}
	// The workload must actually have exercised the caches under test.
	st := inc.Stats.Snapshot()
	if st.StateExtends == 0 || st.StateHits == 0 {
		t.Errorf("incremental state machinery unexercised: %+v", st)
	}
	if st.ModelReuse+st.SubsumeSat+st.SubsumeUnsat == 0 {
		t.Errorf("no model-reuse or subsumption hit in the whole workload: %+v", st)
	}
}

// Regression (review finding): when the condition's own unit binding
// severs a group from the condition's variables, the rewritten group
// must still be solved. cs = {x ≤ y, y ≤ 3} is sat; cond = (x == 5)
// substitutes x away leaving the residual {5 ≤ y, y ≤ 3} over {y} only
// — a naive cond-variable intersection skips it and wrongly reports
// sat. Both the incremental and the reference pipeline must say unsat.
func TestCondUnitSeveredGroupStillSolved(t *testing.T) {
	build := func() *ConstraintSet {
		return EmptySet.
			Append(expr.Ule(v(0), v(1))).
			Append(expr.Ule(v(1), c8(3)))
	}
	cond := expr.Eq(v(0), c8(5))
	s := New()
	sat, err := s.MayBeTrue(build(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("incremental: x≤y ∧ y≤3 ∧ x==5 must be unsat")
	}
	ref := New()
	sat, err = ref.ReferenceMayBeTrue(build(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("reference: x≤y ∧ y≤3 ∧ x==5 must be unsat")
	}
	// And the Fork at such a branch site only keeps the false side.
	s2 := New()
	cs := build()
	if ok, err := s2.CheckSat(cs); err != nil || !ok {
		t.Fatalf("base set should be sat: %v %v", ok, err)
	}
	mayT, mayF, err := s2.Fork(cs, cond)
	if err != nil {
		t.Fatal(err)
	}
	if mayT || !mayF {
		t.Errorf("Fork should report (false,true), got (%v,%v)", mayT, mayF)
	}
}

// Regression: a query that exceeded the backtrack budget must be
// retried — not answered ErrBudget from the cache forever — once the
// budget is raised.
func TestBudgetRaiseRetriesQuery(t *testing.T) {
	s := New()
	s.MaxBacktracks = 1
	cs := EmptySet.
		Append(expr.Eq(c8(7), expr.Add(v(0), expr.Add(v(1), v(2))))).
		Append(expr.Not(expr.Eq(v(0), v(1)))).
		Append(expr.Ult(v(2), v(0)))
	if _, _, err := s.Solve(cs); err == nil {
		t.Skip("budget unexpectedly sufficient")
	}
	// Same budget: still answered (from cache) with ErrBudget.
	if _, _, err := s.Solve(cs); err == nil {
		t.Fatal("same-budget retry should still report budget exhaustion")
	}
	// Raised budget: the stamped entry no longer applies.
	s.MaxBacktracks = 1 << 16
	m, sat, err := s.Solve(cs)
	if err != nil {
		t.Fatalf("raised budget should allow the query to complete: %v", err)
	}
	if !sat || !cs.EvalAll(m) {
		t.Fatalf("expected a valid model after budget raise, got sat=%v m=%v", sat, m)
	}
}

// A superset of a known-unsat constraint set is answered unsat by
// subsumption, without a group search. The contradiction lives in
// two-variable sum constraints the interval tier cannot see through
// (Add over two unbounded bytes abstracts to the full range), so the
// query genuinely reaches the subsumption cache.
func TestSubsumptionSupersetUnsat(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Eq(c8(10), expr.Add(v(0), v(1))))
	cond := expr.Eq(c8(20), expr.Add(v(0), v(1))) // sum ≡ 10 ∧ sum ≡ 20: unsat via search
	sat, err := s.MayBeTrue(cs, cond)
	if err != nil || sat {
		t.Fatalf("seed query should be unsat: %v %v", sat, err)
	}
	// A different, larger set containing the same contradiction.
	cs2 := cs.Append(expr.Ult(c8(200), v(9)))
	before := s.Stats.Snapshot()
	sat, err = s.MayBeTrue(cs2, cond)
	if err != nil || sat {
		t.Fatalf("superset query should be unsat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.SubsumeUnsat != before.SubsumeUnsat+1 {
		t.Errorf("expected a subsumption unsat hit: %+v -> %+v", before, after)
	}
	if after.SolverRuns != before.SolverRuns {
		t.Errorf("subsumption hit should not run a group search: %+v -> %+v", before, after)
	}
}

// A subset of a known-sat constraint set is answered sat by
// subsumption, reusing the stored model.
func TestSubsumptionSubsetSat(t *testing.T) {
	s := New()
	big := EmptySet.
		Append(expr.Ult(v(0), c8(10))).
		Append(expr.Ult(v(1), c8(10)))
	cond := expr.Ult(c8(3), v(0))
	sat, err := s.MayBeTrue(big, cond)
	if err != nil || !sat {
		t.Fatalf("seed query should be sat: %v %v", sat, err)
	}
	// A fresh chain carrying a subset of the conjuncts.
	small := EmptySet.Append(expr.Ult(v(1), c8(10)))
	before := s.Stats.Snapshot()
	sat, err = s.MayBeTrue(small, cond)
	if err != nil || !sat {
		t.Fatalf("subset query should be sat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.SubsumeSat != before.SubsumeSat+1 {
		t.Errorf("expected a subsumption sat hit: %+v -> %+v", before, after)
	}
}

// Fork decides one branch direction by evaluating the parent set's
// cached witness model — at most one full query per branch site.
func TestForkFastPath(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(10)))
	if ok, err := s.CheckSat(cs); err != nil || !ok {
		t.Fatalf("set should be sat: %v %v", ok, err)
	}
	before := s.Stats.Snapshot()
	mayT, mayF, err := s.Fork(cs, expr.Ult(v(0), c8(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !mayT || !mayF {
		t.Fatalf("both directions should be feasible: (%v,%v)", mayT, mayF)
	}
	after := s.Stats.Snapshot()
	if after.ForkFastHits != before.ForkFastHits+1 {
		t.Errorf("expected a fork fast-path hit: %+v -> %+v", before, after)
	}
	if after.Queries != before.Queries+1 {
		t.Errorf("fused fork should issue exactly one full query, issued %d",
			after.Queries-before.Queries)
	}
}

// Appending onto a solved set extends its memoized state instead of
// reprocessing the whole chain: the per-append extension count stays
// constant as the chain deepens.
func TestIncrementalAppendIsO1(t *testing.T) {
	s := New()
	cs := EmptySet
	for i := uint64(0); i < 64; i++ {
		cs = cs.Append(expr.Ult(v(i%16), c8(200)))
		if ok, err := s.CheckSat(cs); err != nil || !ok {
			t.Fatalf("chain should stay sat at depth %d: %v %v", i, ok, err)
		}
	}
	st := s.Stats.Snapshot()
	// 64 appends: one extension each (plus the cond-extension per query
	// is state-less). Reprocessing from scratch would be ~64²/2 ≈ 2000.
	if st.StateExtends > 70 {
		t.Errorf("expected ~64 state extensions along the chain, got %d", st.StateExtends)
	}
}

// After a state-table eviction the solve state is rebuilt by replaying
// the Append chain, and answers stay identical.
func TestStateEvictionRebuild(t *testing.T) {
	s := New()
	s.maxStates = 4
	cs := EmptySet
	for i := uint64(0); i < 32; i++ {
		cs = cs.Append(expr.Ult(v(i%8), c8(uint64(100+i))))
	}
	m, sat, err := s.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("deep chain should be sat: %v %v", sat, err)
	}
	if !cs.EvalAll(m) {
		t.Fatalf("model %v does not satisfy the chain", m)
	}
	// Canonicality across eviction: a fresh solver computes the same
	// full model through its own (evicting) rebuilds.
	s2 := New()
	s2.maxStates = 4
	m2, sat2, err := s2.Solve(cs)
	if err != nil || !sat2 {
		t.Fatal("fresh solver disagreed on satisfiability")
	}
	for id, val := range m {
		if m2[id] != val {
			t.Fatalf("model divergence after eviction rebuild on var %d: %d vs %d", id, val, m2[id])
		}
	}
}
