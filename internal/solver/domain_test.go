package solver

import "testing"

// Reference implementations: the per-value loops the word-mask versions
// replaced.
func removeOutsideLoop(d *domain, lo, hi uint8) {
	for v := 0; v < 256; v++ {
		if v < int(lo) || v > int(hi) {
			d.remove(uint8(v))
		}
	}
}

func removeRangeLoop(d *domain, lo, hi uint8) {
	for v := int(lo); v <= int(hi); v++ {
		d.remove(uint8(v))
	}
}

// patternedDomain returns a non-trivial starting set so the equivalence
// checks exercise partial words, not just the full domain.
func patternedDomain(seed uint64) domain {
	d := fullDomain()
	for v := 0; v < 256; v++ {
		if (uint64(v)*0x9e3779b97f4a7c15+seed)%3 == 0 {
			d.remove(uint8(v))
		}
	}
	return d
}

// Exhaustive over every (lo, hi) endpoint pair: the mask versions must
// match the loop versions bit for bit.
func TestDomainRangeMaskEquivalence(t *testing.T) {
	for lo := 0; lo < 256; lo++ {
		for hi := lo; hi < 256; hi++ {
			a := patternedDomain(uint64(lo))
			b := a
			a.removeOutside(uint8(lo), uint8(hi))
			removeOutsideLoop(&b, uint8(lo), uint8(hi))
			if a != b {
				t.Fatalf("removeOutside(%d,%d) diverges from loop", lo, hi)
			}
			a = patternedDomain(uint64(hi))
			b = a
			a.removeRange(uint8(lo), uint8(hi))
			removeRangeLoop(&b, uint8(lo), uint8(hi))
			if a != b {
				t.Fatalf("removeRange(%d,%d) diverges from loop", lo, hi)
			}
		}
	}
}

func TestDomainIntersect(t *testing.T) {
	a := fullDomain()
	a.removeOutside(10, 200)
	b := fullDomain()
	b.removeOutside(150, 255)
	a.intersect(&b)
	for v := 0; v < 256; v++ {
		want := v >= 150 && v <= 200
		if a.has(uint8(v)) != want {
			t.Fatalf("intersect: value %d presence = %v, want %v", v, a.has(uint8(v)), want)
		}
	}
	if a.count() != 51 {
		t.Fatalf("intersect: count = %d, want 51", a.count())
	}
}

// Microbench: word-mask removeOutside vs the 256-iteration loop.
func BenchmarkDomainRemoveOutside(b *testing.B) {
	b.Run("mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := fullDomain()
			d.removeOutside(uint8(i), uint8(i)|128)
		}
	})
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := fullDomain()
			removeOutsideLoop(&d, uint8(i), uint8(i)|128)
		}
	})
}
