package solver

import (
	"math/rand"
	"testing"

	"cloud9/internal/expr"
)

// richConstraint draws from a wider operator mix than randomConstraint —
// signed compares, sums, differences, widening, boolean connectives — to
// stress both the forward interval evaluation and the backward
// narrowing paths.
func richConstraint(rng *rand.Rand, nv int) *expr.Expr {
	mkTerm := func() *expr.Expr {
		if rng.Intn(2) == 0 {
			return v(uint64(rng.Intn(nv)))
		}
		return c8(uint64(rng.Intn(256)))
	}
	l, r := mkTerm(), mkTerm()
	switch rng.Intn(4) {
	case 0:
		l = expr.Add(l, mkTerm())
	case 1:
		l = expr.Sub(l, mkTerm())
	case 2:
		// Widened compare: zext both sides to W32.
		l, r = w32(l), w32(r)
	}
	var c *expr.Expr
	switch rng.Intn(6) {
	case 0:
		c = expr.Eq(l, r)
	case 1:
		c = expr.Ult(l, r)
	case 2:
		c = expr.Ule(l, r)
	case 3:
		c = expr.Slt(l, r)
	case 4:
		c = expr.Sle(l, r)
	default:
		c = expr.Not(expr.Eq(l, r))
	}
	switch rng.Intn(5) {
	case 0:
		c = expr.LAnd(c, expr.Ule(mkTerm(), mkTerm()))
	case 1:
		c = expr.LOr(c, expr.Ult(mkTerm(), mkTerm()))
	}
	return c
}

// Differential property test for the interval tier: across randomized
// feasible Append trees — with tiny caps forcing state evictions and
// rebuilds — the incremental path (whose first tier is the interval
// abstraction) must agree with the from-scratch reference on every
// branch verdict, fork, and solve, and the interval tier must actually
// fire over the workload.
func TestQuickDifferentialInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	inc := New()
	inc.maxStates = 8
	inc.maxCache = 16

	for round := 0; round < 80; round++ {
		ref := New()
		nv := 2 + rng.Intn(4)
		sets := []*ConstraintSet{EmptySet}
		for grow := 0; grow < 10; grow++ {
			base := sets[rng.Intn(len(sets))]
			c := richConstraint(rng, nv)
			ok, err := inc.MayBeTrue(base, c)
			if err != nil {
				continue
			}
			refOK, err := ref.ReferenceMayBeTrue(base, c)
			if err != nil {
				t.Fatalf("reference error: %v", err)
			}
			if ok != refOK {
				t.Fatalf("MayBeTrue divergence: incremental=%v reference=%v for %v ++ %v",
					ok, refOK, base.Slice(), c)
			}
			if ok {
				sets = append(sets, base.Append(c))
			}
		}
		for q := 0; q < 20; q++ {
			cs := sets[rng.Intn(len(sets))]
			cond := richConstraint(rng, nv)
			switch rng.Intn(3) {
			case 0:
				got, err := inc.MayBeTrue(cs, cond)
				if err != nil {
					continue
				}
				want, err := ref.ReferenceMayBeTrue(cs, cond)
				if err != nil {
					t.Fatalf("reference error: %v", err)
				}
				if got != want {
					t.Fatalf("MayBeTrue divergence: incremental=%v reference=%v for %v | %v",
						got, want, cs.Slice(), cond)
				}
			case 1:
				mayT, mayF, err := inc.Fork(cs, cond)
				if err != nil {
					continue
				}
				wantT, err := ref.ReferenceMayBeTrue(cs, cond)
				if err != nil {
					t.Fatal(err)
				}
				wantF, err := ref.ReferenceMayBeTrue(cs, expr.Not(cond))
				if err != nil {
					t.Fatal(err)
				}
				if mayT != wantT || mayF != wantF {
					t.Fatalf("Fork divergence: incremental=(%v,%v) reference=(%v,%v) for %v | %v",
						mayT, mayF, wantT, wantF, cs.Slice(), cond)
				}
			case 2:
				m, sat, err := inc.Solve(cs)
				if err != nil {
					continue
				}
				rm, refSat, err := ref.ReferenceSolve(cs)
				if err != nil {
					t.Fatal(err)
				}
				if sat != refSat {
					t.Fatalf("Solve divergence: incremental=%v reference=%v for %v",
						sat, refSat, cs.Slice())
				}
				if sat && !cs.EvalAll(m) {
					t.Fatalf("incremental model %v does not satisfy %v", m, cs.Slice())
				}
				if refSat && !cs.EvalAll(rm) {
					t.Fatalf("reference model %v does not satisfy %v", rm, cs.Slice())
				}
			}
		}
	}
	st := inc.Stats.Snapshot()
	if st.IntervalSat+st.IntervalUnsat+st.ForkIntervalHits == 0 {
		t.Errorf("interval tier never decided a query over the whole workload: %+v", st)
	}
	if st.IntervalSeeds == 0 {
		t.Errorf("no group search started from interval-narrowed domains: %+v", st)
	}
}

// A comparison chain propagates bounds transitively across extensions:
// x < 10, y ≤ x, z < y pin z ∈ [0,8] (and y ∈ [1,9]) without any
// search, and conditions over z are decided by the interval tier alone.
func TestIntervalComparisonChainFixpoint(t *testing.T) {
	s := New()
	cs := EmptySet.
		Append(expr.Ult(v(0), c8(10))).
		Append(expr.Ule(v(1), v(0))).
		Append(expr.Ult(v(2), v(1)))

	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, expr.Ule(c8(9), v(2))) // z ≥ 9: outside [0,8]
	if err != nil || sat {
		t.Fatalf("z ≥ 9 should be unsat: %v %v", sat, err)
	}
	sat, err = s.MayBeTrue(cs, expr.Ult(v(2), c8(9))) // z < 9: whole box
	if err != nil || !sat {
		t.Fatalf("z < 9 should be sat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.IntervalUnsat != before.IntervalUnsat+1 {
		t.Errorf("expected one interval-unsat verdict: %+v -> %+v", before, after)
	}
	if after.IntervalSat != before.IntervalSat+1 {
		t.Errorf("expected one interval-sat verdict: %+v -> %+v", before, after)
	}
	if after.SolverRuns != before.SolverRuns {
		t.Errorf("interval verdicts must not run a search: %+v -> %+v", before, after)
	}
}

// A unit equality pins the variable's interval to a point, and the
// interval tier decides conditions against it.
func TestIntervalUnitPinsBounds(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Eq(v(0), c8(7)))
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, expr.Ult(v(0), c8(5)))
	if err != nil || sat {
		t.Fatalf("v0==7 ∧ v0<5 should be unsat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.IntervalUnsat != before.IntervalUnsat+1 || after.SolverRuns != before.SolverRuns {
		t.Errorf("expected a search-free interval verdict: %+v -> %+v", before, after)
	}
}

// Forward evaluation through arithmetic: bounded bytes sum to a bounded
// interval, so a comparison on the sum is decided with zero search.
func TestIntervalForwardAdd(t *testing.T) {
	s := New()
	cs := EmptySet.
		Append(expr.Ult(v(0), c8(10))).
		Append(expr.Ult(v(1), c8(10)))
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, expr.Ult(expr.Add(v(0), v(1)), c8(50)))
	if err != nil || !sat {
		t.Fatalf("sum of two <10 bytes is < 50: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.IntervalSat != before.IntervalSat+1 || after.SolverRuns != before.SolverRuns {
		t.Errorf("expected a search-free interval-sat verdict: %+v -> %+v", before, after)
	}
}

// Bounds narrow through widening: a W32 comparison over a zero-extended
// byte constrains the byte itself.
func TestIntervalNarrowThroughZExt(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(w32(v(0)), c32(100)))
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, expr.Ult(v(0), c8(200)))
	if err != nil || !sat {
		t.Fatalf("v0 < 100 implies v0 < 200: %v %v", sat, err)
	}
	sat, err = s.MayBeTrue(cs, expr.Ule(c8(100), v(0)))
	if err != nil || sat {
		t.Fatalf("v0 < 100 contradicts v0 ≥ 100: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.IntervalSat+after.IntervalUnsat != before.IntervalSat+before.IntervalUnsat+2 {
		t.Errorf("expected both verdicts from the interval tier: %+v -> %+v", before, after)
	}
}

// An extension whose conjuncts are individually undecidable can still
// narrow some interval to empty: the set is proven unsat before groups
// are even searched.
func TestIntervalEmptyProvesUnsat(t *testing.T) {
	s := New()
	cs := EmptySet.Append(expr.Ult(v(0), c8(5)))
	// v9 ≤ v0 (≤ 4) ∧ 10 ≤ v9: forward evaluation of each conjunct is
	// indeterminate, but the joint narrowing empties v9's interval.
	cond := expr.LAnd(expr.Ule(v(9), v(0)), expr.Ule(c8(10), v(9)))
	before := s.Stats.Snapshot()
	sat, err := s.MayBeTrue(cs, cond)
	if err != nil || sat {
		t.Fatalf("query should be unsat: %v %v", sat, err)
	}
	after := s.Stats.Snapshot()
	if after.IntervalEmpty == before.IntervalEmpty {
		t.Errorf("expected an empty-interval unsat proof: %+v -> %+v", before, after)
	}
	if after.SolverRuns != before.SolverRuns {
		t.Errorf("empty-interval unsat must not run a search: %+v -> %+v", before, after)
	}
	ref := New()
	refSat, err := ref.ReferenceMayBeTrue(cs, cond)
	if err != nil || refSat {
		t.Fatalf("reference disagrees: %v %v", refSat, err)
	}
}

// White-box: asserted connectives narrow to the fixpoint in one
// refiner pass sequence (LAnd splits, bounds intersect).
func TestIntervalNarrowCondLAnd(t *testing.T) {
	r := boundsRefiner{}
	r.narrowCond(expr.LAnd(expr.Ult(v(0), c8(10)), expr.Ule(c8(3), v(0))), true)
	if r.conflict {
		t.Fatal("unexpected conflict")
	}
	iv, ok := r.b[0]
	if !ok || iv.lo != 3 || iv.hi != 9 {
		t.Fatalf("want v0 ∈ [3,9], got %+v (present=%v)", iv, ok)
	}
	// Asserting the negation of a disjunction narrows both arms.
	r2 := boundsRefiner{}
	r2.narrowCond(expr.LOr(expr.Ult(v(1), c8(5)), expr.Ult(c8(250), v(1))), false)
	if r2.conflict {
		t.Fatal("unexpected conflict")
	}
	iv, ok = r2.b[1]
	if !ok || iv.lo != 5 || iv.hi != 250 {
		t.Fatalf("want v1 ∈ [5,250], got %+v (present=%v)", iv, ok)
	}
}

// Seeding must never leak into canonical answers: a solver that ran
// bounds-narrowed may-query searches first computes the same full model
// as a fresh solver that never did (narrowed group results stay out of
// the group cache; full-model searches run unseeded).
func TestIntervalSeedingKeepsModelsCanonical(t *testing.T) {
	cs := EmptySet.
		Append(expr.Ult(v(0), c8(100))).
		Append(expr.Ule(v(1), v(0))).
		Append(expr.Not(expr.Eq(v(1), c8(0))))

	a := New()
	ma, sat, err := a.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("set should be sat: %v %v", sat, err)
	}

	b := New()
	// Warm b with may-queries whose searches start from narrowed domains.
	if ok, err := b.CheckSat(cs); err != nil || !ok {
		t.Fatalf("CheckSat should be sat: %v %v", ok, err)
	}
	if ok, err := b.MayBeTrue(cs, expr.Ult(v(1), v(0))); err != nil || !ok {
		t.Fatalf("warm query should be sat: %v %v", ok, err)
	}
	if b.Stats.Snapshot().IntervalSeeds == 0 {
		t.Fatal("warm queries should have used interval-seeded searches")
	}
	mb, sat, err := b.Solve(cs)
	if err != nil || !sat {
		t.Fatalf("set should be sat: %v %v", sat, err)
	}
	for id, val := range ma {
		if mb[id] != val {
			t.Fatalf("model divergence on var %d: fresh=%d warmed=%d", id, val, mb[id])
		}
	}
	if !cs.EvalAll(ma) || !cs.EvalAll(mb) {
		t.Fatal("models do not satisfy the set")
	}
}
