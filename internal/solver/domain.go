package solver

import "math/bits"

// domain is the set of candidate values for one symbolic byte, as a
// 256-bit set.
type domain struct {
	bits [4]uint64
}

func fullDomain() domain {
	return domain{bits: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
}

func (d *domain) has(v uint8) bool {
	return d.bits[v>>6]&(1<<(v&63)) != 0
}

func (d *domain) remove(v uint8) {
	d.bits[v>>6] &^= 1 << (v & 63)
}

// rangeMask returns the 256-bit set {lo..hi} built from word masks:
// full words between the endpoints, partial edge words shaped by a
// shift. Constant-time, no per-value loop.
func rangeMask(lo, hi uint8) domain {
	var d domain
	lw, hw := int(lo>>6), int(hi>>6)
	for w := lw; w <= hw; w++ {
		d.bits[w] = ^uint64(0)
	}
	d.bits[lw] &= ^uint64(0) << (lo & 63)
	d.bits[hw] &= ^uint64(0) >> (63 - (hi & 63))
	return d
}

// removeOutside intersects the domain with {lo..hi}.
func (d *domain) removeOutside(lo, hi uint8) {
	m := rangeMask(lo, hi)
	d.bits[0] &= m.bits[0]
	d.bits[1] &= m.bits[1]
	d.bits[2] &= m.bits[2]
	d.bits[3] &= m.bits[3]
}

// removeRange removes {lo..hi} from the domain.
func (d *domain) removeRange(lo, hi uint8) {
	m := rangeMask(lo, hi)
	d.bits[0] &^= m.bits[0]
	d.bits[1] &^= m.bits[1]
	d.bits[2] &^= m.bits[2]
	d.bits[3] &^= m.bits[3]
}

// intersect keeps only the values present in both domains.
func (d *domain) intersect(o *domain) {
	d.bits[0] &= o.bits[0]
	d.bits[1] &= o.bits[1]
	d.bits[2] &= o.bits[2]
	d.bits[3] &= o.bits[3]
}

func (d *domain) count() int {
	return bits.OnesCount64(d.bits[0]) + bits.OnesCount64(d.bits[1]) +
		bits.OnesCount64(d.bits[2]) + bits.OnesCount64(d.bits[3])
}

func (d *domain) empty() bool {
	return d.bits[0]|d.bits[1]|d.bits[2]|d.bits[3] == 0
}

// first returns the smallest value in the domain; ok=false when empty.
func (d *domain) first() (uint8, bool) {
	for w := 0; w < 4; w++ {
		if d.bits[w] != 0 {
			return uint8(w*64 + bits.TrailingZeros64(d.bits[w])), true
		}
	}
	return 0, false
}

// next returns the smallest value strictly greater than v; ok=false when
// no such value exists.
func (d *domain) next(v uint8) (uint8, bool) {
	if v == 255 {
		return 0, false
	}
	v++
	w := int(v >> 6)
	rem := d.bits[w] & (^uint64(0) << (v & 63))
	for {
		if rem != 0 {
			return uint8(w*64 + bits.TrailingZeros64(rem)), true
		}
		w++
		if w == 4 {
			return 0, false
		}
		rem = d.bits[w]
	}
}

// singleton reports whether the domain holds exactly one value.
func (d *domain) singleton() (uint8, bool) {
	v, ok := d.first()
	if !ok {
		return 0, false
	}
	if _, more := d.next(v); more {
		return 0, false
	}
	return v, true
}
